(** Plan-space instantiation of the coverage-guided fuzzer.

    {!Analysis.Fuzz} supplies the generic novelty loop; this module
    supplies the two halves it is parameterized over, specialized to
    {!Plan}:

    - {!mutate}: one random structure-preserving edit — schedule
      surgery on [Fixed] pick sequences (swap / splice / truncate /
      perturb / extend, all {!Shm.Schedule.well_formed}-preserving),
      fault-list surgery (insert / remove / retime crashes, restarts
      and stalls; window edits on net faults), or a reseed.  Every
      result satisfies {!Plan.validate}.
    - {!execute}: one instrumented chaos run — a coverage probe feeds
      {!Analysis.Fingerprint.cover} states to the engine, the oracle
      verdict marks violations, and the kept form is the plan with its
      {e recorded} schedule pinned as [Fixed], so every corpus entry
      replays byte-deterministically.

    Coverage guides search order only; verdicts come from the same
    oracle suite every chaos run uses (DESIGN.md §11). *)

val mutate : Util.Prng.t -> Plan.t -> Plan.t
(** One random mutation of [plan]; always satisfies {!Plan.validate}
    (falls back to a reseed when the drawn edit cannot be made
    valid).  Deterministic in the generator state. *)

val execute : ?probe:Shm.Probe.t -> ?max_steps:int -> Plan.t -> Plan.t Analysis.Fuzz.exec
(** Run the plan under {!Chaos.run_plan} with a coverage probe
    attached ([state_probe]); for message-passing plans, falls back to
    {!Chaos.run_net_plan} with a single whole-run outcome fingerprint
    (canonical do-multiset + stuck set — net runs expose no
    per-event machine state).  [pinned] is the plan with the recorded
    pick sequence fixed (shm) or the plan itself (net).  [probe] is
    composed in front of the coverage probe on every shm execution —
    the seam for an always-on {!Obs.Journal.probe} flight recorder,
    whose drop-oldest ring then retains the tail of the most recent
    (e.g. violating) execution ([amo_run fuzz --flight-out]).
    @raise Invalid_argument on an invalid plan. *)

val harness : ?probe:Shm.Probe.t -> ?max_steps:int -> unit -> Plan.t Analysis.Fuzz.harness
(** {!mutate} + {!execute}: the guided configuration. *)

val blind_harness : ?probe:Shm.Probe.t -> ?max_steps:int -> unit -> Plan.t Analysis.Fuzz.harness
(** The control: identical {!execute} (same probe, same engine, same
    novelty table), but mutation ignores the parent and draws a fresh
    {!Plan.gen} plan with the parent's instance parameters — blind
    Monte-Carlo sampling expressed in the same loop, so guided-vs-blind
    comparisons (bench E17) differ in feedback use only. *)

val default_seeds :
  ?algo:Plan.algo -> seed:int -> n:int -> m:int -> beta:int -> unit -> Plan.t list
(** A small diverse starting corpus for an empty [--corpus] dir: clean
    plans under round-robin / random / bursty schedules, one crash
    plan, one crash-recovery plan.  Deterministic in [seed]. *)

val minimize : Plan.t -> (Plan.t * Chaos.run_result) option
(** Re-run a failing corpus entry and ddmin it with
    {!Chaos.shrink_failure}: [Some (minimal_plan, its_run)] when the
    plan still trips an oracle, [None] when it no longer reproduces or
    is a message-passing plan (the shrinker is shm-only). *)
