(* Fault plans: pure, serializable descriptions of one adversarial
   run.  A plan carries everything needed to reproduce the run — the
   instance (n, m, beta), the algorithm variant, the scheduler, the
   PRNG seed and the fault list — so a failing plan written to disk is
   a complete, replayable counterexample.  Compilation onto the
   executor/network seams lives in Inject; execution in Chaos. *)

open Obs

let version = 1

type algo = Kk | Kk_mutant_skip_check | Kk_mutant_skip_recovery_mark

let algo_to_string = function
  | Kk -> "kk"
  | Kk_mutant_skip_check -> "kk-mutant-skip-check"
  | Kk_mutant_skip_recovery_mark -> "kk-mutant-skip-recovery-mark"

let algo_of_string = function
  | "kk" -> Some Kk
  | "kk-mutant-skip-check" -> Some Kk_mutant_skip_check
  | "kk-mutant-skip-recovery-mark" -> Some Kk_mutant_skip_recovery_mark
  | _ -> None

type sched = Round_robin | Random_sched | Bursty of int | Fixed of int list

type shm_fault =
  | Crash_at of { pid : int; step : int }
  | Crash_after_writes of { pid : int; writes : int }
  | Crash_in_phase of { pid : int; phase : string }
  | Restart_at of { pid : int; step : int }
  | Stall of { pid : int; from_step : int; len : int }

type net_fault =
  | Drop of { prob : float; from_tick : int; len : int }
  | Duplicate of { prob : float; from_tick : int; len : int }
  | Delay_node of { node : int; from_tick : int; len : int }
  | Partition of { group : int list; from_tick : int; len : int }

type t = {
  name : string;
  algo : algo;
  seed : int;
  n : int;
  m : int;
  beta : int;
  sched : sched;
  shm : shm_fault list;
  net : net_fault list;
}

let make ?(name = "plan") ?(algo = Kk) ?(seed = 0) ?(sched = Round_robin)
    ?(shm = []) ?(net = []) ~n ~m ~beta () =
  { name; algo; seed; n; m; beta; sched; shm; net }

(* ---- static accounting ---- *)

let fault_pid = function
  | Crash_at { pid; _ }
  | Crash_after_writes { pid; _ }
  | Crash_in_phase { pid; _ }
  | Restart_at { pid; _ }
  | Stall { pid; _ } ->
      pid

let is_crash = function
  | Crash_at _ | Crash_after_writes _ | Crash_in_phase _ -> true
  | Restart_at _ | Stall _ -> false

let count_for t ~pid pred =
  List.length (List.filter (fun f -> fault_pid f = pid && pred f) t.shm)

(* A pid is permanently crashed when it has more crash faults than
   restarts: its last crash is never recovered from. *)
let permanent_crashes t =
  let pids = List.sort_uniq compare (List.map fault_pid t.shm) in
  List.filter
    (fun pid ->
      count_for t ~pid is_crash
      > count_for t ~pid (function Restart_at _ -> true | _ -> false))
    pids

let restart_faults t =
  List.filter_map
    (function Restart_at { pid; step } -> Some (pid, step) | _ -> None)
    t.shm

let has_recovery t = restart_faults t <> []

let lossy t = List.exists (function Drop _ -> true | _ -> false) t.net

(* ---- validation ---- *)

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.n < 1 then err "n must be >= 1"
  else if t.m < 1 || t.m > t.n then err "m must be in [1, n]"
  else if t.beta < 1 then err "beta must be >= 1"
  else if t.shm <> [] && t.net <> [] then
    err "a plan is either shared-memory or message-passing, not both"
  else
    let bad_sched =
      match t.sched with
      | Round_robin | Random_sched -> None
      | Bursty k when k < 1 -> Some "bursty burst must be >= 1"
      | Bursty _ -> None
      | Fixed picks ->
          if Shm.Schedule.well_formed ~m:t.m picks then None
          else Some "fixed schedule pid out of range"
    in
    match bad_sched with
    | Some e -> Error e
    | None -> (
        let bad_shm =
          List.find_map
            (fun f ->
              let pid = fault_pid f in
              if pid < 1 || pid > t.m then Some "fault pid out of range"
              else
                match f with
                | Crash_at { step; _ } when step < 0 ->
                    Some "crash step must be >= 0"
                | Crash_after_writes { writes; _ } when writes < 1 ->
                    Some "crash write count must be >= 1"
                | Crash_in_phase { phase; _ } when phase = "" ->
                    Some "crash phase must be non-empty"
                | Restart_at { pid; step } ->
                    if step < 0 then Some "restart step must be >= 0"
                    else if count_for t ~pid is_crash = 0 then
                      Some "restart without a prior crash fault"
                    else None
                | Stall { from_step; len; _ }
                  when from_step < 0 || len < 0 ->
                    Some "stall window must be non-negative"
                | _ -> None)
            t.shm
        in
        match bad_shm with
        | Some e -> Error e
        | None -> (
            let bad_net =
              List.find_map
                (fun f ->
                  match f with
                  | Drop { prob; from_tick; len }
                  | Duplicate { prob; from_tick; len } ->
                      if prob < 0. || prob > 1. then
                        Some "fault probability must be in [0, 1]"
                      else if from_tick < 0 || len < 0 then
                        Some "fault window must be non-negative"
                      else None
                  | Delay_node { node; from_tick; len } ->
                      if node < 1 then Some "delayed node must be >= 1"
                      else if from_tick < 0 || len < 0 then
                        Some "fault window must be non-negative"
                      else None
                  | Partition { group; from_tick; len } ->
                      if group = [] then Some "partition group must be non-empty"
                      else if List.exists (fun x -> x < 1) group then
                        Some "partition node must be >= 1"
                      else if from_tick < 0 || len < 0 then
                        Some "fault window must be non-negative"
                      else None)
                t.net
            in
            match bad_net with
            | Some e -> Error e
            | None ->
                let f = List.length (permanent_crashes t) in
                if f > t.m - 1 then
                  err "%d permanent crashes but at most m-1 = %d allowed" f
                    (t.m - 1)
                else Ok ()))

(* ---- JSON ---- *)

let sched_to_json = function
  | Round_robin -> Json.Obj [ ("kind", Json.String "round-robin") ]
  | Random_sched -> Json.Obj [ ("kind", Json.String "random") ]
  | Bursty k ->
      Json.Obj [ ("kind", Json.String "bursty"); ("max_burst", Json.Int k) ]
  | Fixed picks ->
      Json.Obj
        [
          ("kind", Json.String "fixed");
          ("picks", Json.List (List.map (fun p -> Json.Int p) picks));
        ]

let shm_fault_to_json = function
  | Crash_at { pid; step } ->
      Json.Obj
        [
          ("fault", Json.String "crash_at");
          ("pid", Json.Int pid);
          ("step", Json.Int step);
        ]
  | Crash_after_writes { pid; writes } ->
      Json.Obj
        [
          ("fault", Json.String "crash_after_writes");
          ("pid", Json.Int pid);
          ("writes", Json.Int writes);
        ]
  | Crash_in_phase { pid; phase } ->
      Json.Obj
        [
          ("fault", Json.String "crash_in_phase");
          ("pid", Json.Int pid);
          ("phase", Json.String phase);
        ]
  | Restart_at { pid; step } ->
      Json.Obj
        [
          ("fault", Json.String "restart_at");
          ("pid", Json.Int pid);
          ("step", Json.Int step);
        ]
  | Stall { pid; from_step; len } ->
      Json.Obj
        [
          ("fault", Json.String "stall");
          ("pid", Json.Int pid);
          ("from", Json.Int from_step);
          ("len", Json.Int len);
        ]

let net_fault_to_json = function
  | Drop { prob; from_tick; len } ->
      Json.Obj
        [
          ("fault", Json.String "drop");
          ("prob", Json.Float prob);
          ("from", Json.Int from_tick);
          ("len", Json.Int len);
        ]
  | Duplicate { prob; from_tick; len } ->
      Json.Obj
        [
          ("fault", Json.String "duplicate");
          ("prob", Json.Float prob);
          ("from", Json.Int from_tick);
          ("len", Json.Int len);
        ]
  | Delay_node { node; from_tick; len } ->
      Json.Obj
        [
          ("fault", Json.String "delay_node");
          ("node", Json.Int node);
          ("from", Json.Int from_tick);
          ("len", Json.Int len);
        ]
  | Partition { group; from_tick; len } ->
      Json.Obj
        [
          ("fault", Json.String "partition");
          ("group", Json.List (List.map (fun x -> Json.Int x) group));
          ("from", Json.Int from_tick);
          ("len", Json.Int len);
        ]

let to_json t =
  Json.Obj
    [
      ("version", Json.Int version);
      ("name", Json.String t.name);
      ("algo", Json.String (algo_to_string t.algo));
      ("seed", Json.Int t.seed);
      ("n", Json.Int t.n);
      ("m", Json.Int t.m);
      ("beta", Json.Int t.beta);
      ("sched", sched_to_json t.sched);
      ("shm", Json.List (List.map shm_fault_to_json t.shm));
      ("net", Json.List (List.map net_fault_to_json t.net));
    ]

let field name get j =
  match Option.bind (Json.member name j) get with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "plan: missing or ill-typed %S" name)

let ( let* ) = Result.bind

let int_list j =
  Option.bind (Json.get_list j) (fun l ->
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | x :: rest -> (
            match Json.get_int x with
            | Some i -> go (i :: acc) rest
            | None -> None)
      in
      go [] l)

let sched_of_json j =
  let* kind = field "kind" Json.get_string j in
  match kind with
  | "round-robin" -> Ok Round_robin
  | "random" -> Ok Random_sched
  | "bursty" ->
      let* k = field "max_burst" Json.get_int j in
      Ok (Bursty k)
  | "fixed" ->
      let* picks = field "picks" int_list j in
      Ok (Fixed picks)
  | k -> Error (Printf.sprintf "plan: unknown scheduler %S" k)

let shm_fault_of_json j =
  let* kind = field "fault" Json.get_string j in
  match kind with
  | "crash_at" ->
      let* pid = field "pid" Json.get_int j in
      let* step = field "step" Json.get_int j in
      Ok (Crash_at { pid; step })
  | "crash_after_writes" ->
      let* pid = field "pid" Json.get_int j in
      let* writes = field "writes" Json.get_int j in
      Ok (Crash_after_writes { pid; writes })
  | "crash_in_phase" ->
      let* pid = field "pid" Json.get_int j in
      let* phase = field "phase" Json.get_string j in
      Ok (Crash_in_phase { pid; phase })
  | "restart_at" ->
      let* pid = field "pid" Json.get_int j in
      let* step = field "step" Json.get_int j in
      Ok (Restart_at { pid; step })
  | "stall" ->
      let* pid = field "pid" Json.get_int j in
      let* from_step = field "from" Json.get_int j in
      let* len = field "len" Json.get_int j in
      Ok (Stall { pid; from_step; len })
  | k -> Error (Printf.sprintf "plan: unknown shm fault %S" k)

let net_fault_of_json j =
  let* kind = field "fault" Json.get_string j in
  match kind with
  | "drop" | "duplicate" ->
      let* prob = field "prob" Json.get_float j in
      let* from_tick = field "from" Json.get_int j in
      let* len = field "len" Json.get_int j in
      Ok
        (if kind = "drop" then Drop { prob; from_tick; len }
         else Duplicate { prob; from_tick; len })
  | "delay_node" ->
      let* node = field "node" Json.get_int j in
      let* from_tick = field "from" Json.get_int j in
      let* len = field "len" Json.get_int j in
      Ok (Delay_node { node; from_tick; len })
  | "partition" ->
      let* group = field "group" int_list j in
      let* from_tick = field "from" Json.get_int j in
      let* len = field "len" Json.get_int j in
      Ok (Partition { group; from_tick; len })
  | k -> Error (Printf.sprintf "plan: unknown net fault %S" k)

let list_of_json item j =
  match Json.get_list j with
  | None -> Error "plan: expected a list"
  | Some l ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest ->
            let* v = item x in
            go (v :: acc) rest
      in
      go [] l

let of_json j =
  let* v = field "version" Json.get_int j in
  if v > version then Error (Printf.sprintf "plan: unsupported version %d" v)
  else
    let* name = field "name" Json.get_string j in
    let* algo_s = field "algo" Json.get_string j in
    let* algo =
      match algo_of_string algo_s with
      | Some a -> Ok a
      | None -> Error (Printf.sprintf "plan: unknown algo %S" algo_s)
    in
    let* seed = field "seed" Json.get_int j in
    let* n = field "n" Json.get_int j in
    let* m = field "m" Json.get_int j in
    let* beta = field "beta" Json.get_int j in
    let* sched =
      match Json.member "sched" j with
      | Some sj -> sched_of_json sj
      | None -> Error "plan: missing sched"
    in
    let* shm =
      match Json.member "shm" j with
      | Some sj -> list_of_json shm_fault_of_json sj
      | None -> Ok []
    in
    let* net =
      match Json.member "net" j with
      | Some nj -> list_of_json net_fault_of_json nj
      | None -> Ok []
    in
    let t = { name; algo; seed; n; m; beta; sched; shm; net } in
    let* () = validate t in
    Ok t

let to_string t = Json.to_string ~minify:false (to_json t)

let of_string s = Result.bind (Json.parse s) of_json

let save ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let s =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      of_string s

(* ---- seeded random generation ---- *)

(* Rough upper estimate of a failure-free run's length, used to place
   fault windows where they can actually bite. *)
let horizon ~n ~m = (4 * n * m) + (20 * m)

let gen_phases =
  [| "set_next"; "gather_try"; "gather_done"; "check"; "do"; "done" |]

let gen ?(algo = Kk) ?(recovery = false) ?(stalls = true) ~name ~n ~m ~beta rng
    =
  let module P = Util.Prng in
  let h = horizon ~n ~m in
  let sched =
    match P.int rng 3 with
    | 0 -> Round_robin
    | 1 -> Random_sched
    | _ -> Bursty (1 + P.int rng 8)
  in
  (* a recovery plan needs someone to recover: force >= 1 victim *)
  let f =
    if m = 1 then 0
    else if recovery then 1 + P.int rng (m - 1)
    else P.int rng m
  in
  let victims =
    Array.to_list (Array.map (( + ) 1) (P.sample_without_replacement rng f m))
  in
  let crash_of pid =
    match P.int rng 3 with
    | 0 -> Crash_at { pid; step = P.int rng h }
    | 1 -> Crash_after_writes { pid; writes = 1 + P.int rng (max 1 (n / m)) }
    | _ ->
        Crash_in_phase
          { pid; phase = gen_phases.(P.int rng (Array.length gen_phases)) }
  in
  let faults =
    List.concat_map
      (fun pid ->
        let crash = crash_of pid in
        (* under [recovery], roughly half the victims restart (at least
           one, so a recovery plan really exercises the path) *)
        if recovery && (pid = List.hd victims || P.bool rng) then
          [ crash; Restart_at { pid; step = P.int rng h } ]
        else [ crash ])
      victims
  in
  let stalls =
    if stalls && m > 1 && P.bool rng then
      List.init
        (1 + P.int rng 2)
        (fun _ ->
          Stall
            {
              pid = 1 + P.int rng m;
              from_step = P.int rng h;
              len = 1 + P.int rng (max 2 (h / 4));
            })
    else []
  in
  let seed = P.int rng (1 lsl 30) in
  { name; algo; seed; n; m; beta; sched; shm = faults @ stalls; net = [] }

let gen_net ?(name = "net-plan") ~n ~m ~beta ~servers rng =
  let module P = Util.Prng in
  let nodes = servers + m in
  let th = 40 * n * m in
  (* message-tick horizon *)
  let prob () = float_of_int (1 + P.int rng 4) /. 16. in
  let window () =
    let from_tick = P.int rng th in
    (from_tick, 1 + P.int rng (max 2 (th / 4)))
  in
  let fault () =
    match P.int rng 3 with
    | 0 ->
        let from_tick, len = window () in
        Duplicate { prob = prob (); from_tick; len }
    | 1 ->
        let from_tick, len = window () in
        Delay_node { node = 1 + P.int rng nodes; from_tick; len }
    | _ ->
        let from_tick, len = window () in
        let size = 1 + P.int rng (nodes - 1) in
        let group =
          Array.to_list
            (Array.map (( + ) 1) (P.sample_without_replacement rng size nodes))
        in
        Partition { group; from_tick; len }
  in
  let net = List.init (1 + P.int rng 3) (fun _ -> fault ()) in
  let net =
    (* occasional genuine loss: such plans waive the no-stuck check *)
    if P.bernoulli rng 0.25 then
      let from_tick, len = window () in
      Drop { prob = prob () /. 2.; from_tick; len } :: net
    else net
  in
  let seed = P.int rng (1 lsl 30) in
  {
    name;
    algo = Kk;
    seed;
    n;
    m;
    beta;
    sched = Round_robin;
    shm = [];
    net;
  }

let pp fmt t =
  Format.fprintf fmt "%s: %s n=%d m=%d beta=%d seed=%d (%d shm, %d net faults)"
    t.name (algo_to_string t.algo) t.n t.m t.beta t.seed (List.length t.shm)
    (List.length t.net)
