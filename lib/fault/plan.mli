(** Composable fault plans.

    A plan is a pure, JSON-serializable description of one adversarial
    execution: the instance parameters (n, m, beta), the algorithm
    variant under test, a scheduler, a PRNG seed, and a list of faults
    to inject.  Plans are the unit of chaos testing — generated
    randomly ({!gen}, {!gen_net}), saved to disk as replayable
    counterexample artifacts ({!save}/{!load}), and shrunk by ddmin to
    minimal failing plans (see {!Chaos.shrink_failure}).

    A plan targets exactly one of the two platforms: shared memory
    ([shm] faults compile onto [Shm.Adversary]/[Shm.Executor]) or
    message passing ([net] faults compile onto the [Msg.Net] delivery
    driver).  {!validate} rejects plans mixing both. *)

val version : int
(** Serialization format version, embedded in every plan file. *)

type algo =
  | Kk  (** the real KKβ algorithm *)
  | Kk_mutant_skip_check
      (** seeded bug: skip the post-gather CHECK re-read *)
  | Kk_mutant_skip_recovery_mark
      (** seeded bug: recovery omits re-marking the interrupted
          announcement, so a crash between DO and its done-write can
          lead to re-execution after restart *)

val algo_to_string : algo -> string
val algo_of_string : string -> algo option

type sched =
  | Round_robin
  | Random_sched
  | Bursty of int  (** random bursts of up to [k] steps per process *)
  | Fixed of int list
      (** exact pick sequence (1-based pids); dead/finished pids are
          skipped, exhaustion falls back to round-robin — this is the
          shape ddmin shrinks *)

type shm_fault =
  | Crash_at of { pid : int; step : int }
  | Crash_after_writes of { pid : int; writes : int }
      (** crash after the pid's [writes]-th shared-memory write *)
  | Crash_in_phase of { pid : int; phase : string }
      (** crash the first time the pid's automaton reports [phase] *)
  | Restart_at of { pid : int; step : int }
      (** revive a crashed pid at the first decision point [>= step];
          the process rebuilds its state from shared registers *)
  | Stall of { pid : int; from_step : int; len : int }
      (** scheduler refuses to pick [pid] for [len] decision points
          starting at [from_step] — models a stalled-but-live process,
          within the asynchronous model *)

type net_fault =
  | Drop of { prob : float; from_tick : int; len : int }
      (** lose each delivery with probability [prob] during the window;
          genuinely lossy — plans containing [Drop] waive the
          no-stuck-client oracle *)
  | Duplicate of { prob : float; from_tick : int; len : int }
  | Delay_node of { node : int; from_tick : int; len : int }
      (** messages to [node] are frozen during the window *)
  | Partition of { group : int list; from_tick : int; len : int }
      (** only same-side messages deliver during the window; heals at
          window end *)

type t = {
  name : string;
  algo : algo;
  seed : int;  (** single seed; all run randomness derives from it *)
  n : int;
  m : int;
  beta : int;
  sched : sched;
  shm : shm_fault list;
  net : net_fault list;
}

val make :
  ?name:string ->
  ?algo:algo ->
  ?seed:int ->
  ?sched:sched ->
  ?shm:shm_fault list ->
  ?net:net_fault list ->
  n:int ->
  m:int ->
  beta:int ->
  unit ->
  t

val validate : t -> (unit, string) result
(** Structural sanity: instance bounds, pids in [1..m], probabilities
    in [0,1], restarts preceded by a crash fault, not both shm and net
    faults, and at most [m-1] {e permanent} crashes (a pid crashed more
    times than it restarts) — the model's [f <= m-1] bound. *)

val permanent_crashes : t -> int list
(** Pids whose last crash is never restarted. *)

val restart_faults : t -> (int * int) list
(** [(pid, step)] of every [Restart_at], in plan order. *)

val has_recovery : t -> bool
(** The plan contains at least one [Restart_at]. *)

val lossy : t -> bool
(** The plan contains a [Drop] fault (no-stuck oracle waived). *)

val fault_pid : shm_fault -> int

(** {2 Serialization} — deterministic JSON; [of_string (to_string p)]
    round-trips every valid plan. *)

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> (t, string) result
val to_string : t -> string
val of_string : string -> (t, string) result
val save : path:string -> t -> unit
val load : string -> (t, string) result

(** {2 Generation} *)

val horizon : n:int -> m:int -> int
(** Rough step-count upper estimate for a failure-free run; fault
    windows are placed within it. *)

val gen_phases : string array
(** The automaton phase names {!gen} targets with [Crash_in_phase];
    shared with the fuzzer's fault-mutation operators ({!Fuzz}). *)

val gen :
  ?algo:algo ->
  ?recovery:bool ->
  ?stalls:bool ->
  name:string ->
  n:int ->
  m:int ->
  beta:int ->
  Util.Prng.t ->
  t
(** Random shared-memory plan: up to [m-1] crash victims (mixed
    crash-at-step / after-k-writes / in-phase), optional restarts
    ([recovery] guarantees at least one), optional stall windows.
    Always satisfies {!validate}. *)

val gen_net :
  ?name:string ->
  n:int ->
  m:int ->
  beta:int ->
  servers:int ->
  Util.Prng.t ->
  t
(** Random message-passing plan over [servers + m] nodes: duplicate /
    delay / partition windows (all healing), occasionally a lossy
    [Drop] window. *)

val pp : Format.formatter -> t -> unit
