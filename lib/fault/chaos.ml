(* The chaos engine: execute fault plans, check trace oracles, shrink
   failures with ddmin, and soak over seeded random plans. *)

open Util

type run_result = {
  plan : Plan.t;
  schedule : int list;
  violations : Analysis.Oracle.violation list;
  dos : (int * int) list;
  do_count : int;
  steps : int;
  wait_free : bool;
  crashes : int list;
  restarts : int list;
  metrics_json : string;
  trace : Shm.Trace.t;
}

(* At-most-once is unconditional (Lemma 4.1 needs no liveness).  The
   effectiveness floor and quiescence are theorems about terminating
   executions, and Lemma 4.3 guarantees termination only for
   beta >= m — below that, a crash can legitimately wedge a job in
   every survivor's TRY set forever, so those oracles would report
   false positives. *)
let oracles_for (plan : Plan.t) =
  Analysis.Oracle.at_most_once
  ::
  (if plan.beta >= plan.m then
     [
       Analysis.Oracle.recovery_effectiveness ~n:plan.n ~m:plan.m
         ~beta:plan.beta;
       Analysis.Oracle.quiescence ~m:plan.m;
     ]
   else [])

let run_plan ?(provenance = true) ?trace_level ?probe ?state_probe ?monitor
    ?(fail_fast = false) ?max_steps (plan : Plan.t) =
  (match Plan.validate plan with
  | Ok () -> ()
  | Error e -> invalid_arg ("Chaos.run_plan: " ^ e));
  if plan.net <> [] then
    invalid_arg "Chaos.run_plan: message-passing plan (use run_net_plan)";
  let n = plan.n and m = plan.m and beta = plan.beta in
  let rng = Prng.of_int plan.seed in
  let sched_rng = Prng.split rng in
  let metrics = Shm.Metrics.create ~m in
  let collision = Core.Collision.create ~m in
  let shared = Core.Kk.make_shared ~metrics ~m ~capacity:n ~name:"kk" () in
  let mutant_skip_check = plan.algo = Plan.Kk_mutant_skip_check in
  let mutant_skip_recovery_mark =
    plan.algo = Plan.Kk_mutant_skip_recovery_mark
  in
  let kks =
    Array.init m (fun i ->
        Core.Kk.create ~shared ~pid:(i + 1) ~beta ~policy:Core.Policy.Rank_split
          ~free:(Core.Job.universe ~n) ~collision ~mutant_skip_check
          ~mutant_skip_recovery_mark ~provenance ~mode:Core.Kk.Standalone ())
  in
  let handles = Array.map Core.Kk.handle kks in
  (* compose the caller's probe, the coverage probe (built late — it
     needs the handles), and the online monitor's; the caller probe
     runs first so its record of the fatal event is emitted before a
     fail-fast abort unwinds the executor *)
  let probe =
    let probes =
      List.filter_map Fun.id
        [
          probe;
          Option.map (fun f -> f handles) state_probe;
          Option.map (fun mon -> Obs.Bridge.monitor_probe ~fail_fast mon) monitor;
        ]
    in
    match probes with
    | [] -> None
    | p :: rest -> Some (List.fold_left Shm.Probe.compose p rest)
  in
  let scheduler, picks =
    Shm.Schedule.recording (Inject.scheduler ~plan ~rng:sched_rng)
  in
  let adversary = Inject.adversary ~plan ~metrics in
  let restarter =
    Inject.restarter ~plan ~restart:(fun pid -> Core.Kk.restart kks.(pid - 1))
  in
  let max_steps =
    match max_steps with Some s -> s | None -> 200_000 + (1_000 * n * m)
  in
  let outcome =
    Shm.Executor.run ~max_steps ?trace_level ?probe ?restarter ~scheduler
      ~adversary handles
  in
  let trace = outcome.Shm.Executor.trace in
  let dos = Shm.Trace.do_events trace in
  {
    plan;
    schedule = picks ();
    violations = Analysis.Oracle.check_all (oracles_for plan) trace;
    dos;
    do_count = Core.Spec.do_count dos;
    steps = outcome.Shm.Executor.steps;
    wait_free = outcome.Shm.Executor.reason = Shm.Executor.Quiescent;
    crashes = Shm.Trace.crashes trace;
    restarts = Shm.Trace.restarts trace;
    metrics_json = Shm.Metrics.to_json metrics;
    trace;
  }

(* A run that exhausts the step budget used to look like an ordinary
   non-wait-free result: [wait_free = false], usually zero violations,
   so a replay reported success.  [replay_plan] turns it into the same
   exception the model checker raises, carrying the recorded pick
   prefix so the wedged interleaving is reproducible. *)
let replay_plan ?provenance ?trace_level ?probe ?max_steps (plan : Plan.t) =
  let r = run_plan ?provenance ?trace_level ?probe ?max_steps plan in
  if not r.wait_free then
    raise
      (Analysis.Explore.Max_steps_exceeded
         { schedule = r.schedule; steps = r.steps });
  r

(* ---- shrinking ---- *)

let violation_names r =
  List.sort_uniq compare
    (List.map (fun v -> v.Analysis.Oracle.oracle) r.violations)

(* A candidate plan "still fails" when it trips at least one of the
   oracles the original failure tripped — shrinking must not wander to
   a different bug. *)
let reproduces ~names plan =
  match Plan.validate plan with
  | Error _ -> false
  | Ok () ->
      let r = run_plan plan in
      List.exists
        (fun v -> List.mem v.Analysis.Oracle.oracle names)
        r.violations

let shrink_failure r0 =
  let names = violation_names r0 in
  if names = [] then invalid_arg "Chaos.shrink_failure: run has no violations";
  (* 1. pin the interleaving: the recorded pick sequence replayed as a
     Fixed schedule makes the failure deterministic and shrinkable *)
  let pinned = { r0.plan with Plan.sched = Plan.Fixed r0.schedule } in
  let base = if reproduces ~names pinned then pinned else r0.plan in
  (* 2. ddmin the fault list *)
  let shm =
    Analysis.Explore.ddmin
      ~violates:(fun shm -> reproduces ~names { base with Plan.shm })
      base.Plan.shm
  in
  let base = { base with Plan.shm } in
  (* 3. ddmin the pinned schedule itself *)
  let base =
    match base.Plan.sched with
    | Plan.Fixed picks ->
        let picks =
          Analysis.Explore.ddmin
            ~violates:(fun picks ->
              reproduces ~names { base with Plan.sched = Plan.Fixed picks })
            picks
        in
        { base with Plan.sched = Plan.Fixed picks }
    | _ -> base
  in
  let minimal = { base with Plan.name = r0.plan.Plan.name ^ "-min" } in
  (minimal, run_plan minimal)

(* ---- soak ---- *)

type soak_stats = {
  runs : int;
  recovery_runs : int;
  failures : int;
  total_steps : int;
  total_dos : int;
  total_restarts : int;
  aborted : bool;
  first_failure : (Plan.t * run_result) option;
}

let soak ?(sink = Obs.Sink.null) ?(algo = Plan.Kk) ?(recovery_every = 4)
    ?(stalls = true) ?(fail_fast = false) ?probe ?on_run ?on_failure ?rtevents
    ~seed ~count ~n ~m ~beta () =
  (* with a runtime-events consumer attached, each chaos run is a
     [chaos.run] span on the runtime timeline and the rings are
     drained between runs — soaks run long enough to overflow them
     otherwise *)
  let instrument = Option.is_some rtevents in
  let root = Prng.of_int seed in
  let runs = ref 0 in
  let recovery_runs = ref 0 in
  let failures = ref 0 in
  let total_steps = ref 0 in
  let total_dos = ref 0 in
  let total_restarts = ref 0 in
  let aborted = ref false in
  let first_failure = ref None in
  (try
     for i = 0 to count - 1 do
       let rng = Prng.split root in
       let recovery = recovery_every > 0 && i mod recovery_every = 0 in
       let plan =
         Plan.gen ~algo ~recovery ~stalls
           ~name:(Printf.sprintf "chaos-%03d" i)
           ~n ~m ~beta rng
       in
       if instrument then Obs.Rtevents.emit_begin "chaos.run";
       let r =
         if not fail_fast then run_plan ?probe plan
         else begin
           (* a streaming monitor aborts the executor on the first
              repeat Do; the plan is deterministic, so re-running it
              without the monitor rebuilds the full (shrinkable)
              result for the violating run *)
           let monitor =
             Obs.Monitor.create ~n:plan.n ~m:plan.m ~beta:plan.beta ()
           in
           try run_plan ?probe ~monitor ~fail_fast:true plan
           with Obs.Monitor.Tripped _ ->
             aborted := true;
             run_plan ?probe plan
         end
       in
       (match rtevents with
       | Some re ->
           Obs.Rtevents.emit_end "chaos.run";
           ignore (Obs.Rtevents.poll re)
       | None -> ());
       incr runs;
       if Plan.has_recovery plan then incr recovery_runs;
       total_steps := !total_steps + r.steps;
       total_dos := !total_dos + r.do_count;
       total_restarts := !total_restarts + List.length r.restarts;
       if r.violations <> [] then begin
         incr failures;
         List.iter
           (fun (v : Analysis.Oracle.violation) ->
             Obs.Sink.emit sink
               (Obs.Sink.record ~ts:i ~kind:Obs.Sink.Instant
                  ~args:
                    [
                      ("plan", Obs.Json.String plan.Plan.name);
                      ("seed", Obs.Json.Int plan.Plan.seed);
                      ("oracle", Obs.Json.String v.oracle);
                      ("detail", Obs.Json.String v.detail);
                    ]
                  "chaos.violation"))
           r.violations;
         (* dump-on-failure seam: fires before shrinking so a flight
            recorder attached via [probe] is persisted while it still
            holds the failing run's tail (the shrink re-runs below use
            bare [run_plan] and never touch the caller's probe) *)
         (match on_failure with Some f -> f r | None -> ());
         if Option.is_none !first_failure then
           first_failure := Some (shrink_failure r)
       end;
       (match on_run with Some f -> f i r | None -> ());
       if !aborted then raise Exit
     done
   with Exit -> ());
  Obs.Sink.emit sink
    (Obs.Sink.record ~ts:count ~kind:Obs.Sink.Instant
       ~args:
         [
           ("runs", Obs.Json.Int !runs);
           ("recovery_runs", Obs.Json.Int !recovery_runs);
           ("failures", Obs.Json.Int !failures);
         ]
       "chaos.done");
  {
    runs = !runs;
    recovery_runs = !recovery_runs;
    failures = !failures;
    total_steps = !total_steps;
    total_dos = !total_dos;
    total_restarts = !total_restarts;
    aborted = !aborted;
    first_failure = !first_failure;
  }

(* ---- message passing ---- *)

type net_result = {
  plan : Plan.t;
  dos : (int * int) list;
  completed : int list;
  stuck : int list;
  deliveries : int;
  violations : Analysis.Oracle.violation list;
}

let run_net_plan ?(servers = 3) (plan : Plan.t) =
  (match Plan.validate plan with
  | Ok () -> ()
  | Error e -> invalid_arg ("Chaos.run_net_plan: " ^ e));
  if plan.shm <> [] then
    invalid_arg "Chaos.run_net_plan: shared-memory plan (use run_plan)";
  let n = plan.n and m = plan.m and beta = plan.beta in
  let rng = Prng.of_int plan.seed in
  let bodies =
    Array.init m (fun i -> Msg.Kk_mp.kk_body ~n ~m ~beta ~pid:(i + 1))
  in
  let outcome =
    Msg.Abd.run
      ~deliver:(Inject.net_deliver ~plan ())
      ~servers
      ~registers:(Msg.Kk_mp.register_count ~n ~m)
      ~rng ~client_bodies:bodies ()
  in
  let violations = ref [] in
  let add oracle detail =
    violations := { Analysis.Oracle.oracle; detail } :: !violations
  in
  (* at-most-once holds under every network fault, loss included *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (p, j) ->
      match Hashtbl.find_opt seen j with
      | Some p0 ->
          add "at-most-once"
            (Printf.sprintf "job %d performed by p%d and again by p%d" j p0 p)
      | None -> Hashtbl.add seen j p)
    outcome.Msg.Abd.dos;
  (* liveness and effectiveness only promised without message loss:
     every non-Drop window heals, so all clients must complete and
     (with zero client crashes) the Theorem 4.4 floor must hold *)
  if not (Plan.lossy plan) then begin
    List.iter
      (fun c -> add "quiescence" (Printf.sprintf "client %d stuck" c))
      outcome.Msg.Abd.stuck;
    (* the floor needs Lemma 4.3's termination condition, as in
       [oracles_for] *)
    if beta >= m then begin
      let distinct = Hashtbl.length seen in
      let floor = max 0 (n - (beta + m - 2)) in
      if distinct < floor then
        add "recovery-effectiveness"
          (Printf.sprintf "%d distinct jobs < floor %d" distinct floor)
    end
  end;
  {
    plan;
    dos = outcome.Msg.Abd.dos;
    completed = outcome.Msg.Abd.completed;
    stuck = outcome.Msg.Abd.stuck;
    deliveries = outcome.Msg.Abd.deliveries;
    violations = List.rev !violations;
  }
