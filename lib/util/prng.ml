(* SplitMix64: Steele, Lea & Flood, "Fast splittable pseudorandom
   number generators", OOPSLA 2014.  The golden-gamma increment and the
   two finalizer rounds below are the reference constants. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let of_int seed = create (Int64.of_int seed)

let copy g = { state = g.state }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g =
  let seed = next_int64 g in
  create (mix seed)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the high bits keeps the distribution exactly
     uniform even when [bound] does not divide 2^62. *)
  let rec draw () =
    let bits = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2) in
    let v = bits mod bound in
    if bits - v + (bound - 1) < 0 then draw () else v
  in
  draw ()

let int_in g lo hi =
  if hi < lo then invalid_arg "Prng.int_in: hi < lo";
  lo + int g (hi - lo + 1)

let bool g = Int64.logand (next_int64 g) 1L = 1L

let float g bound =
  let bits = Int64.to_float (Int64.shift_right_logical (next_int64 g) 11) in
  bound *. (bits /. 9007199254740992.0 (* 2^53 *))

let bernoulli g p = float g 1.0 < p

let shuffle_in_place g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation g k =
  let a = Array.init k (fun i -> i) in
  shuffle_in_place g a;
  a

let sample_without_replacement g k bound =
  if k < 0 || k > bound then
    invalid_arg "Prng.sample_without_replacement: need 0 <= k <= bound";
  (* Partial Fisher–Yates over a sparse map: O(k) time and space even
     for large [bound]. *)
  let swapped = Hashtbl.create (2 * k) in
  let get i = match Hashtbl.find_opt swapped i with Some v -> v | None -> i in
  Array.init k (fun i ->
      let j = int_in g i (bound - 1) in
      let vi = get i and vj = get j in
      Hashtbl.replace swapped j vi;
      Hashtbl.replace swapped i vj;
      vj)
