type t = int array (* index 0 unused; slot p is process p's component *)

let create ~m =
  if m < 1 then invalid_arg "Vclock.create: m must be >= 1";
  Array.make (m + 1) 0

let m t = Array.length t - 1

let check t p =
  if p < 1 || p >= Array.length t then
    invalid_arg "Vclock: process id out of range"

let get t ~p =
  check t p;
  t.(p)

let tick t ~p =
  check t p;
  t.(p) <- t.(p) + 1

let join dst src =
  if Array.length dst <> Array.length src then
    invalid_arg "Vclock.join: clocks for different m";
  for p = 1 to Array.length dst - 1 do
    if src.(p) > dst.(p) then dst.(p) <- src.(p)
  done

let copy t = Array.copy t

let leq a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vclock.leq: clocks for different m";
  let ok = ref true in
  for p = 1 to Array.length a - 1 do
    if a.(p) > b.(p) then ok := false
  done;
  !ok

let happens_before a b = leq a b && not (leq b a)

let concurrent a b = (not (leq a b)) && not (leq b a)

let to_list t = Array.to_list (Array.sub t 1 (Array.length t - 1))

let pp fmt t =
  Format.fprintf fmt "[";
  for p = 1 to Array.length t - 1 do
    if p > 1 then Format.fprintf fmt ",";
    Format.fprintf fmt "%d" t.(p)
  done;
  Format.fprintf fmt "]"

let to_string t = Format.asprintf "%a" pp t
