type level = Quiet | Info | Debug

let level_to_string = function
  | Quiet -> "quiet"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "quiet" | "silent" | "none" | "0" -> Some Quiet
  | "info" | "1" -> Some Info
  | "debug" | "2" -> Some Debug
  | _ -> None

let from_env () =
  match Sys.getenv_opt "AMO_LOG" with
  | None -> Quiet
  | Some s -> Option.value (level_of_string s) ~default:Quiet

let current = ref (from_env ())

let set_level l = current := l
let level () = !current

let rank = function Quiet -> 0 | Info -> 1 | Debug -> 2

let enabled l = rank l <= rank !current && l <> Quiet

let out = ref Format.err_formatter

let set_formatter ppf = out := ppf

let formatter () = !out

let finish ppf = Format.fprintf ppf "@."

let log l fmt =
  if enabled l then begin
    Format.fprintf !out "[amo:%s] " (level_to_string l);
    Format.kfprintf finish !out fmt
  end
  else Format.ikfprintf (fun _ -> ()) !out fmt

let info fmt = log Info fmt
let debug fmt = log Debug fmt
