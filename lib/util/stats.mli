(** Small statistics toolkit used by the benchmark harness.

    The experiments in EXPERIMENTS.md compare measured quantities
    (effectiveness, work, collision counts) against the paper's
    asymptotic predictions.  This module provides the summary
    statistics and the least-squares fits used for those comparisons;
    nothing here is specific to the at-most-once problem. *)

val mean : float array -> float
(** Arithmetic mean. @raise Invalid_argument on the empty array. *)

val stddev : float array -> float
(** Sample standard deviation (Bessel-corrected); [0.] for singleton
    arrays. @raise Invalid_argument on the empty array. *)

val min_max : float array -> float * float
(** Smallest and largest element. @raise Invalid_argument on the empty
    array. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], by linear interpolation
    between closest ranks. Sorts a copy; the input is untouched.
    @raise Invalid_argument on the empty array or [p] out of range. *)

val median : float array -> float
(** [median xs = percentile xs 50.]. *)

type linear_fit = {
  slope : float;
  intercept : float;
  r2 : float;  (** coefficient of determination *)
}

val linear_fit : (float * float) array -> linear_fit
(** Ordinary least-squares fit of [y = slope * x + intercept].
    @raise Invalid_argument with fewer than two points. *)

val loglog_slope : (float * float) array -> float
(** Slope of the least-squares line through [(log x, log y)]: the
    empirical polynomial degree of a scaling curve.  Points with
    non-positive coordinates are rejected with [Invalid_argument]. *)

val normal_cdf : float -> float
(** Standard normal CDF, Abramowitz & Stegun 26.2.17 polynomial
    approximation (absolute error below 7.5e-8). *)

type mwu = {
  u : float;  (** the U statistic of the first sample *)
  z : float;  (** tie-corrected, continuity-corrected normal deviate *)
  p : float;  (** two-sided p-value (normal approximation) *)
}

val mann_whitney_u : float array -> float array -> mwu
(** Two-sided Mann–Whitney U rank test of [xs] against [ys]: midranks
    for ties, tie-corrected variance, continuity correction, normal
    approximation for the p-value.  All values tied yields [p = 1.]
    (no evidence either way).  The observatory uses this to flag
    cross-run metric shifts without assuming normality of bench
    timings.  @raise Invalid_argument on an empty sample. *)

val bootstrap_ci :
  ?reps:int -> ?confidence:float -> seed:int -> float array -> float * float
(** Percentile-bootstrap confidence interval for the median:
    [reps] (default 1000) resamples drawn with a {!Prng} seeded from
    [seed], so the interval is a deterministic function of
    [(xs, seed, reps, confidence)].  Default confidence 0.95.
    @raise Invalid_argument on empty input, [reps < 1], or confidence
    outside (0,1). *)

val ratio_spread : (float * float) array -> float * float
(** [ratio_spread pts] returns [(mean, max/min)] of the ratios [y/x].
    A spread close to [1.] means [y] is proportional to [x] — the
    check used to validate "measured / predicted is a constant".
    @raise Invalid_argument on empty input or non-positive [x]. *)
