(** Small statistics toolkit used by the benchmark harness.

    The experiments in EXPERIMENTS.md compare measured quantities
    (effectiveness, work, collision counts) against the paper's
    asymptotic predictions.  This module provides the summary
    statistics and the least-squares fits used for those comparisons;
    nothing here is specific to the at-most-once problem. *)

val mean : float array -> float
(** Arithmetic mean. @raise Invalid_argument on the empty array. *)

val stddev : float array -> float
(** Sample standard deviation (Bessel-corrected); [0.] for singleton
    arrays. @raise Invalid_argument on the empty array. *)

val min_max : float array -> float * float
(** Smallest and largest element. @raise Invalid_argument on the empty
    array. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], by linear interpolation
    between closest ranks. Sorts a copy; the input is untouched.
    @raise Invalid_argument on the empty array or [p] out of range. *)

val median : float array -> float
(** [median xs = percentile xs 50.]. *)

type linear_fit = {
  slope : float;
  intercept : float;
  r2 : float;  (** coefficient of determination *)
}

val linear_fit : (float * float) array -> linear_fit
(** Ordinary least-squares fit of [y = slope * x + intercept].
    @raise Invalid_argument with fewer than two points. *)

val loglog_slope : (float * float) array -> float
(** Slope of the least-squares line through [(log x, log y)]: the
    empirical polynomial degree of a scaling curve.  Points with
    non-positive coordinates are rejected with [Invalid_argument]. *)

val ratio_spread : (float * float) array -> float * float
(** [ratio_spread pts] returns [(mean, max/min)] of the ratios [y/x].
    A spread close to [1.] means [y] is proportional to [x] — the
    check used to validate "measured / predicted is a constant".
    @raise Invalid_argument on empty input or non-positive [x]. *)
