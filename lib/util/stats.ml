let require_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty input")

let mean xs =
  require_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let stddev xs =
  require_nonempty "Stats.stddev" xs;
  let k = Array.length xs in
  if k = 1 then 0.
  else begin
    let mu = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. mu) ** 2.)) 0. xs in
    sqrt (ss /. float_of_int (k - 1))
  end

let min_max xs =
  require_nonempty "Stats.min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let percentile xs p =
  require_nonempty "Stats.percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of [0,100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let k = Array.length sorted in
  let pos = p /. 100. *. float_of_int (k - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 50.

type linear_fit = { slope : float; intercept : float; r2 : float }

let linear_fit pts =
  if Array.length pts < 2 then invalid_arg "Stats.linear_fit: need >= 2 points";
  let k = float_of_int (Array.length pts) in
  let sx = Array.fold_left (fun a (x, _) -> a +. x) 0. pts in
  let sy = Array.fold_left (fun a (_, y) -> a +. y) 0. pts in
  let sxx = Array.fold_left (fun a (x, _) -> a +. (x *. x)) 0. pts in
  let sxy = Array.fold_left (fun a (x, y) -> a +. (x *. y)) 0. pts in
  let denom = (k *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then
    invalid_arg "Stats.linear_fit: degenerate x values";
  let slope = ((k *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. k in
  let ybar = sy /. k in
  let ss_tot = Array.fold_left (fun a (_, y) -> a +. ((y -. ybar) ** 2.)) 0. pts in
  let ss_res =
    Array.fold_left
      (fun a (x, y) -> a +. ((y -. ((slope *. x) +. intercept)) ** 2.))
      0. pts
  in
  let r2 = if ss_tot = 0. then 1. else 1. -. (ss_res /. ss_tot) in
  { slope; intercept; r2 }

let loglog_slope pts =
  let logged =
    Array.map
      (fun (x, y) ->
        if x <= 0. || y <= 0. then
          invalid_arg "Stats.loglog_slope: non-positive coordinate"
        else (log x, log y))
      pts
  in
  (linear_fit logged).slope

let ratio_spread pts =
  if Array.length pts = 0 then invalid_arg "Stats.ratio_spread: empty input";
  let ratios =
    Array.map
      (fun (x, y) ->
        if x <= 0. then invalid_arg "Stats.ratio_spread: non-positive x"
        else y /. x)
      pts
  in
  let lo, hi = min_max ratios in
  let spread = if lo = 0. then Float.infinity else hi /. lo in
  (mean ratios, spread)
