let require_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty input")

let mean xs =
  require_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let stddev xs =
  require_nonempty "Stats.stddev" xs;
  let k = Array.length xs in
  if k = 1 then 0.
  else begin
    let mu = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. mu) ** 2.)) 0. xs in
    sqrt (ss /. float_of_int (k - 1))
  end

let min_max xs =
  require_nonempty "Stats.min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let percentile xs p =
  require_nonempty "Stats.percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of [0,100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let k = Array.length sorted in
  let pos = p /. 100. *. float_of_int (k - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 50.

type linear_fit = { slope : float; intercept : float; r2 : float }

let linear_fit pts =
  if Array.length pts < 2 then invalid_arg "Stats.linear_fit: need >= 2 points";
  let k = float_of_int (Array.length pts) in
  let sx = Array.fold_left (fun a (x, _) -> a +. x) 0. pts in
  let sy = Array.fold_left (fun a (_, y) -> a +. y) 0. pts in
  let sxx = Array.fold_left (fun a (x, _) -> a +. (x *. x)) 0. pts in
  let sxy = Array.fold_left (fun a (x, y) -> a +. (x *. y)) 0. pts in
  let denom = (k *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then
    invalid_arg "Stats.linear_fit: degenerate x values";
  let slope = ((k *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. k in
  let ybar = sy /. k in
  let ss_tot = Array.fold_left (fun a (_, y) -> a +. ((y -. ybar) ** 2.)) 0. pts in
  let ss_res =
    Array.fold_left
      (fun a (x, y) -> a +. ((y -. ((slope *. x) +. intercept)) ** 2.))
      0. pts
  in
  let r2 = if ss_tot = 0. then 1. else 1. -. (ss_res /. ss_tot) in
  { slope; intercept; r2 }

let loglog_slope pts =
  let logged =
    Array.map
      (fun (x, y) ->
        if x <= 0. || y <= 0. then
          invalid_arg "Stats.loglog_slope: non-positive coordinate"
        else (log x, log y))
      pts
  in
  (linear_fit logged).slope

(* Standard normal CDF via the Abramowitz & Stegun 26.2.17 polynomial
   (|error| < 7.5e-8) — the stdlib has no erf, and rank tests only
   need the tail to that accuracy. *)
let normal_cdf z =
  let t = 1. /. (1. +. (0.2316419 *. Float.abs z)) in
  let d = 0.3989422804014327 *. exp (-.(z *. z) /. 2.) in
  let poly =
    t
    *. (0.319381530
       +. (t
          *. (-0.356563782
             +. (t *. (1.781477937 +. (t *. (-1.821255978 +. (t *. 1.330274429))))))
          ))
  in
  let p = 1. -. (d *. poly) in
  if z >= 0. then p else 1. -. p

type mwu = { u : float; z : float; p : float }

let mann_whitney_u xs ys =
  let nx = Array.length xs and ny = Array.length ys in
  if nx = 0 || ny = 0 then invalid_arg "Stats.mann_whitney_u: empty sample";
  let nt = nx + ny in
  let pooled =
    Array.append
      (Array.map (fun v -> (v, true)) xs)
      (Array.map (fun v -> (v, false)) ys)
  in
  Array.sort (fun (a, _) (b, _) -> compare a b) pooled;
  (* 1-based midranks; equal runs share their average rank, and each
     run of t ties contributes t^3 - t to the variance correction *)
  let ranks = Array.make nt 0. in
  let tie_term = ref 0. in
  let i = ref 0 in
  while !i < nt do
    let j = ref !i in
    while !j + 1 < nt && fst pooled.(!j + 1) = fst pooled.(!i) do
      incr j
    done;
    let avg = float_of_int (!i + !j + 2) /. 2. in
    for k = !i to !j do
      ranks.(k) <- avg
    done;
    let t = float_of_int (!j - !i + 1) in
    if t > 1. then tie_term := !tie_term +. ((t *. t *. t) -. t);
    i := !j + 1
  done;
  let r1 = ref 0. in
  Array.iteri (fun k (_, is_x) -> if is_x then r1 := !r1 +. ranks.(k)) pooled;
  let nxf = float_of_int nx and nyf = float_of_int ny in
  let ntf = float_of_int nt in
  let u = !r1 -. (nxf *. (nxf +. 1.) /. 2.) in
  let mu = nxf *. nyf /. 2. in
  let sigma2 =
    nxf *. nyf /. 12. *. (ntf +. 1. -. (!tie_term /. (ntf *. (ntf -. 1.))))
  in
  if sigma2 <= 0. then { u; z = 0.; p = 1. } (* every value tied *)
  else begin
    let z = max 0. (Float.abs (u -. mu) -. 0.5) /. sqrt sigma2 in
    { u; z; p = min 1. (2. *. (1. -. normal_cdf z)) }
  end

let bootstrap_ci ?(reps = 1000) ?(confidence = 0.95) ~seed xs =
  require_nonempty "Stats.bootstrap_ci" xs;
  if reps < 1 then invalid_arg "Stats.bootstrap_ci: reps must be >= 1";
  if confidence <= 0. || confidence >= 1. then
    invalid_arg "Stats.bootstrap_ci: confidence in (0,1)";
  let k = Array.length xs in
  let rng = Prng.of_int seed in
  let resample = Array.make k 0. in
  let medians =
    Array.init reps (fun _ ->
        for i = 0 to k - 1 do
          resample.(i) <- xs.(Prng.int rng k)
        done;
        median resample)
  in
  let alpha = (1. -. confidence) /. 2. in
  (percentile medians (100. *. alpha), percentile medians (100. *. (1. -. alpha)))

let ratio_spread pts =
  if Array.length pts = 0 then invalid_arg "Stats.ratio_spread: empty input";
  let ratios =
    Array.map
      (fun (x, y) ->
        if x <= 0. then invalid_arg "Stats.ratio_spread: non-positive x"
        else y /. x)
      pts
  in
  let lo, hi = min_max ratios in
  let spread = if lo = 0. then Float.infinity else hi /. lo in
  (mean ratios, spread)
