(** Deterministic pseudo-random number generation.

    Every randomized component of the repository (schedulers, crash
    adversaries, workload generators, property tests) draws from this
    generator so that any execution is reproducible from a single
    64-bit seed.  The implementation is SplitMix64 (Steele, Lea &
    Flood, OOPSLA 2014): tiny state, excellent statistical quality for
    simulation purposes, and {i splittable}, which lets independent
    components derive independent streams from one root seed. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    independent of the remainder of [g]'s stream. *)

val copy : t -> t
(** [copy g] duplicates the current state; the copy replays exactly the
    same stream as [g] would from this point. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. @raise Invalid_argument
    if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val bool : t -> bool
(** Fair coin. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p]. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle driven by [g]. *)

val permutation : t -> int -> int array
(** [permutation g k] is a uniformly random permutation of
    [0 .. k-1]. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement g k bound] draws [k] distinct values
    from [\[0, bound)], in random order.
    @raise Invalid_argument if [k > bound] or [k < 0]. *)
