(** Leveled diagnostics for library code.

    Library modules must never write to stdout/stderr unconditionally;
    every diagnostic goes through this logger, which is silent unless
    the process opted in.  The initial level comes from the [AMO_LOG]
    environment variable ([quiet]/[info]/[debug], default [quiet]);
    applications can override it with {!set_level} (e.g. from a
    [--log-level] flag).  Re-exported to applications as [Obs.Log].

    Output goes to a settable formatter (default: stderr), so tests
    can capture it and benchmark stdout stays machine-parsable. *)

type level = Quiet | Info | Debug

val level_to_string : level -> string

val level_of_string : string -> level option
(** Accepts ["quiet"]/["silent"]/["none"]/["0"], ["info"]/["1"],
    ["debug"]/["2"] (case-insensitive). *)

val from_env : unit -> level
(** The level named by [AMO_LOG], or [Quiet] when unset/unparsable. *)

val set_level : level -> unit
val level : unit -> level

val enabled : level -> bool
(** [enabled l] is true when a message at level [l] would be printed. *)

val set_formatter : Format.formatter -> unit
(** Redirect log output (default: {!Format.err_formatter}). *)

val formatter : unit -> Format.formatter

val info : ('a, Format.formatter, unit) format -> 'a
(** Printed at [Info] and [Debug] levels, prefixed ["[amo:info] "],
    newline-terminated and flushed. *)

val debug : ('a, Format.formatter, unit) format -> 'a
(** Printed only at [Debug] level. *)
