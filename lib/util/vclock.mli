(** Vector clocks over processes [1..m].

    The provenance layer (DESIGN.md §8) tags every action of the
    simulator with a vector timestamp so causal (happens-before)
    relations between steps of different processes can be recovered
    after the fact.  The partial order is the standard one: a write
    happens-before every read that returns its value, and each
    process's own steps are totally ordered.

    Clocks are mutable and cheap: an [int array] of length [m+1]
    (slot 0 unused, matching the simulator's 1-based pids). *)

type t

val create : m:int -> t
(** All-zero clock for processes [1..m]. *)

val m : t -> int

val get : t -> p:int -> int

val tick : t -> p:int -> unit
(** Advance [p]'s own component by one. *)

val join : t -> t -> unit
(** [join dst src] sets [dst] to the pointwise maximum — the receive /
    read-from rule.  @raise Invalid_argument on mismatched [m]. *)

val copy : t -> t

val leq : t -> t -> bool
(** Pointwise [<=]: [leq a b] iff the step stamped [a] causally
    precedes-or-equals the step stamped [b]. *)

val happens_before : t -> t -> bool
(** Strict causal precedence: [leq a b && not (leq b a)]. *)

val concurrent : t -> t -> bool
(** Neither clock precedes the other. *)

val to_list : t -> int list
(** Components for processes [1..m], in pid order. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** E.g. ["[2,0,1]"]. *)
