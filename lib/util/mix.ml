(* Splitmix64's finalizer with the published constants truncated to
   OCaml's 63-bit native int (literals wider than 62 bits are
   rejected); the multipliers stay odd, which is all the mixing
   needs. *)
let int x =
  let x = x + 0x1E3779B97F4A7C15 in
  let x = (x lxor (x lsr 30)) * 0x3F58476D1CE4E5B9 in
  let x = (x lxor (x lsr 27)) * 0x14D049BB133111EB in
  x lxor (x lsr 31)

(* boost::hash_combine's shape with the splitmix finalizer as the
   per-element scrambler *)
let combine seed v =
  seed lxor (int v + 0x1E3779B97F4A7C15 + (seed lsl 6) + (seed lsr 2))

let pair a b = combine (combine 0x51ED270B a) b

let triple a b c = combine (pair a b) c

let bool seed b = combine seed (if b then 0x5DEECE66D else 0x2545F491)

let string s =
  let h = ref 0x0BF29CE484222325 in
  String.iter (fun c -> h := combine !h (Char.code c)) s;
  int !h

let cell i x = int (combine (int (i + 1)) x)
