(** Integer hash mixing for state fingerprints.

    The fingerprint machinery ({!Shm.Memory} content hashes, the
    per-automaton state hashes, [Analysis.Fingerprint]) needs cheap,
    well-distributed hashes over OCaml's native 63-bit ints.
    [Hashtbl.hash] is unsuitable: it truncates traversal after a few
    nodes, so two large sets differing deep inside collide
    systematically.  These combinators visit every bit they are
    given.

    All functions are pure and allocation-free. *)

val int : int -> int
(** A bijective avalanche finalizer (splitmix64-style, truncated to
    the native int width): every input bit affects every output bit.
    [int 0 <> 0]. *)

val combine : int -> int -> int
(** [combine seed v] folds [v] into [seed]; order-dependent, for
    hashing sequences. *)

val pair : int -> int -> int
(** [pair a b] hashes the ordered pair — not symmetric. *)

val triple : int -> int -> int -> int

val bool : int -> bool -> int

val string : string -> int
(** Hashes every byte (FNV-1a style folded through {!int}). *)

val cell : int -> int -> int
(** [cell i x]: the hash contribution of cell [i] holding value [x] in
    a Zobrist-style XOR-accumulated content hash.  Designed so that
    [h lxor cell i old lxor cell i new] updates an accumulated hash
    incrementally when cell [i] changes from [old] to [new]. *)
