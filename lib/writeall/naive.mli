(** Naive Write-All: every process writes every cell.

    Work is always Θ(n·m), but the algorithm tolerates any [f < m]
    crashes with no coordination whatsoever.  This is the Write-All
    analogue of the trivial at-most-once algorithm, and the upper
    anchor of experiment E7's work comparison. *)

val processes : Wa.instance -> m:int -> Shm.Automaton.handle array
(** Process [p] sweeps cells [1..n] starting from its rotated offset
    (so that under fair schedules the array fills after ≈ n total
    writes even though every process eventually writes everything). *)
