open Shm

type instance = { n : int; array_ : Memory.vector; metrics : Metrics.t }

let make_instance ~metrics ~n =
  if n < 1 then invalid_arg "Wa.make_instance: n must be >= 1";
  { n; array_ = Memory.vector ~metrics ~name:"wa" ~len:n ~init:0; metrics }

let write_cell t ~p j = Memory.vset t.array_ ~p j 1

let complete t =
  let rec go j = j > t.n || (Memory.vpeek t.array_ j = 1 && go (j + 1)) in
  go 1

let written_count t =
  let c = ref 0 in
  for j = 1 to t.n do
    if Memory.vpeek t.array_ j = 1 then incr c
  done;
  !c

let missing t =
  let rec go j acc =
    if j < 1 then acc
    else go (j - 1) (if Memory.vpeek t.array_ j = 0 then j :: acc else acc)
  in
  go t.n []
