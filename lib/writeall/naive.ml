open Shm

type proc = {
  pid : int;
  n : int;
  start : int;
  mutable written : int; (* cells written so far *)
  mutable stopped : bool;
}

let processes inst ~m =
  let n = inst.Wa.n in
  Array.init m (fun i ->
      let pid = i + 1 in
      let st =
        { pid; n; start = (i * n / m) + 1; written = 0; stopped = false }
      in
      Automaton.check
        {
          Automaton.pid;
          step =
            (fun () ->
              if st.written >= st.n then invalid_arg "Naive.step: terminated"
              else begin
                let j = ((st.start - 1 + st.written) mod st.n) + 1 in
                Wa.write_cell inst ~p:st.pid j;
                st.written <- st.written + 1;
                let ev = Event.Do { p = st.pid; job = j } in
                if st.written >= st.n then
                  [ ev; Event.Terminate { p = st.pid } ]
                else [ ev ]
              end);
          alive = (fun () -> (not st.stopped) && st.written < st.n);
          crash = (fun () -> st.stopped <- true);
          phase =
            (fun () -> if st.written >= st.n then "end" else "sweeping");
          footprint =
            (fun () ->
              if st.written >= st.n then Footprint.Internal
              else
                let j = ((st.start - 1 + st.written) mod st.n) + 1 in
                Footprint.Write (Memory.vname inst.Wa.array_ ~cell:j));
          fingerprint =
            (fun () ->
              Some
                (Util.Mix.combine
                   (Util.Mix.pair 0x5741 st.written)
                   (Memory.vhash inst.Wa.array_)));
        })
