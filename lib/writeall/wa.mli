(** The Write-All problem (Kanellakis–Shvartsman [23], paper §7).

    "Using m processors write 1's to all locations of an array of
    size n", all cells initially 0.  Performing "job" j means writing
    1 to cell j; unlike the at-most-once problem, duplicate writes are
    allowed — the specification is {e at-least-once} (for cells, when
    at least one process survives and the algorithm is correct).

    The solver of record here is {!Core.Iterative} in [`Wa] mode
    (WA_IterativeKK(ε), Theorem 7.1); this module holds the problem
    interface, the completeness checker, and shared helpers for the
    baseline solvers in {!Naive} and {!Tas}. *)

type instance = {
  n : int;
  array_ : Shm.Memory.vector;  (** the Write-All target array *)
  metrics : Shm.Metrics.t;
}

val make_instance : metrics:Shm.Metrics.t -> n:int -> instance

val write_cell : instance -> p:int -> int -> unit
(** Metered write of 1 to cell [j]. *)

val complete : instance -> bool
(** All [n] cells hold 1. *)

val written_count : instance -> int
(** Number of cells holding 1 (unmetered sweep; checkers only). *)

val missing : instance -> int list
(** Cells still 0, ascending (checkers only). *)
