(** Test-and-set Write-All baseline.

    The paper contrasts its read/write-only solution with algorithms
    that assume stronger primitives — notably Malewicz's work-optimal
    certified Write-All, which uses test-and-set [36].  This baseline
    plays that role in experiment E7: each cell has a claim bit taken
    with an (atomic, simulated) test-and-set; the winner writes the
    cell and bumps a shared completion counter; processes scan the
    cell ring from rotated offsets and stop when the counter reaches
    [n].  In failure-free executions its total work is Θ(n + m) — the
    linear-work target WA_IterativeKK must match using registers
    only.

    Two deliberate deviations from the read/write model, both flagged
    in DESIGN.md: the test-and-set and the fetch-increment are
    read-modify-write steps, which the simulator permits but the
    paper's model forbids.  The baseline is also {e not}
    crash-tolerant (a process crashing between claiming and writing
    loses the cell forever — exactly the certification problem
    Malewicz's real algorithm exists to solve), so E7 runs it only in
    failure-free executions. *)

val processes : Wa.instance -> m:int -> Shm.Automaton.handle array
(** @raise Invalid_argument if [m > n]. *)

val uses_rmw : bool
(** [true]: this baseline steps outside the atomic read/write model. *)
