(* A thin instantiation of Core.Claim_scan: performing "job" j writes
   1 to Write-All cell j. *)

let uses_rmw = Core.Claim_scan.uses_rmw

let processes inst ~m =
  let n = inst.Wa.n in
  if m > n then invalid_arg "Tas.processes: need m <= n";
  Core.Claim_scan.processes ~metrics:inst.Wa.metrics ~n ~m
    ~perform:(fun ~p ~job ->
      Wa.write_cell inst ~p job;
      [ Shm.Event.Do { p; job } ])
    ()
