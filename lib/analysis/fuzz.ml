(* Coverage-guided fuzzing engine.

   Generic over the input type so the plan-specific half (mutation
   operators, chaos execution, JSON persistence) can live in
   Fault.Fuzz without creating a lib/fault <-> lib/analysis cycle.
   The loop is the classic AFL shape: pick a corpus parent, mutate,
   execute, keep iff the run touched a coverage fingerprint the
   bounded seen table had not recorded.  Keeping the pinned form
   (recorded schedule, concrete faults) makes every corpus entry
   byte-deterministically replayable.

   Determinism: one SplitMix64 stream drives parent selection and is
   split per mutation, so equal (seed, budget, seeds) means equal
   corpora.  Wall clock is consulted only to honour max_seconds. *)

type 'a exec = { states : int list; violating : bool; pinned : 'a }
type 'a harness = { mutate : Util.Prng.t -> 'a -> 'a; execute : 'a -> 'a exec }

type stats = {
  execs : int;
  kept : int;
  corpus : int;
  distinct_states : int;
  lookups : int;
  violations : int;
  first_violation_exec : int option;
  novelty : (int * int) list;
}

let hit_rate s =
  if s.lookups = 0 then 0.
  else float_of_int (s.lookups - s.distinct_states) /. float_of_int s.lookups

type 'a outcome = { stats : stats; final_corpus : 'a list; failures : 'a list }

(* Recent keepers get half the parent-selection mass: novelty clusters,
   so the frontier of the state space is usually reachable by small
   mutations of whatever was kept last. *)
let recent_window = 8

let run ?(sink = Obs.Sink.null) ?table_bits ?(stop_on_violation = false)
    ?max_seconds ?on_keep ?on_exec ~seed ~budget ~harness ~seeds () =
  if seeds = [] then invalid_arg "Fuzz.run: empty seed list";
  if budget < 0 then invalid_arg "Fuzz.run: negative budget";
  let table = Fingerprint.create ?bits:table_bits () in
  let rng = Util.Prng.of_int seed in
  let corpus = ref [] (* reversed: most recent first *)
  and corpus_n = ref 0
  and failures = ref [] (* reversed *)
  and execs = ref 0
  and kept = ref 0
  and distinct = ref 0
  and lookups = ref 0
  and violations = ref 0
  and first_violation = ref None
  and novelty = ref [] (* reversed *) in
  let sample_every = max 1 (budget / 256) in
  let deadline =
    match max_seconds with None -> None | Some s -> Some (Sys.time () +. s)
  in
  let snapshot () =
    {
      execs = !execs;
      kept = !kept;
      corpus = !corpus_n;
      distinct_states = !distinct;
      lookups = !lookups;
      violations = !violations;
      first_violation_exec = !first_violation;
      novelty = List.rev !novelty;
    }
  in
  let emit_instant name args =
    if not (Obs.Sink.is_null sink) then
      Obs.Sink.emit sink
        (Obs.Sink.record ~ts:!execs ~kind:Obs.Sink.Instant ~args name)
  in
  let keep input =
    corpus := input :: !corpus;
    incr corpus_n;
    incr kept;
    (match on_keep with None -> () | Some f -> f input);
    emit_instant "fuzz.kept"
      [ ("corpus", Obs.Json.Int !corpus_n); ("distinct", Obs.Json.Int !distinct) ]
  in
  (* Feed one execution's observations into the table and counters.
     Returns whether any state was novel. *)
  let observe (ex : 'a exec) =
    incr execs;
    let novel = ref false in
    List.iter
      (fun fp ->
        incr lookups;
        if not (Fingerprint.seen table fp) then begin
          incr distinct;
          novel := true
        end)
      ex.states;
    if ex.violating then begin
      incr violations;
      if !first_violation = None then first_violation := Some !execs;
      failures := ex.pinned :: !failures;
      emit_instant "fuzz.violation" [ ("exec", Obs.Json.Int !execs) ]
    end;
    if !execs mod sample_every = 0 then
      novelty := (!execs, !distinct) :: !novelty;
    (match on_exec with None -> () | Some f -> f (snapshot ()));
    !novel
  in
  let stop () =
    (stop_on_violation && !violations > 0)
    || match deadline with None -> false | Some d -> Sys.time () >= d
  in
  (* Seed phase: every seed is executed once (it counts against the
     budget — a fair comparison with blind sampling must charge for
     it) and enters the corpus unconditionally. *)
  List.iter
    (fun s ->
      if !execs < budget && not (stop ()) then begin
        let ex = harness.execute s in
        ignore (observe ex);
        keep ex.pinned
      end
      else keep s)
    seeds;
  (* Mutation loop. *)
  let corpus_arr () = Array.of_list !corpus in
  while !execs < budget && not (stop ()) do
    let arr = corpus_arr () in
    let parent =
      let n = Array.length arr in
      if n = 0 then assert false
      else if Util.Prng.bool rng then arr.(Util.Prng.int rng (min recent_window n))
      else arr.(Util.Prng.int rng n)
    in
    let child = harness.mutate (Util.Prng.split rng) parent in
    let ex = harness.execute child in
    if observe ex then keep ex.pinned
  done;
  let stats = snapshot () in
  if not (Obs.Sink.is_null sink) then
    Obs.Sink.emit sink
      (Obs.Sink.record ~ts:stats.execs ~kind:Obs.Sink.Instant
         ~args:
           [
             ("execs", Obs.Json.Int stats.execs);
             ("kept", Obs.Json.Int stats.kept);
             ("corpus", Obs.Json.Int stats.corpus);
             ("distinct", Obs.Json.Int stats.distinct_states);
             ("violations", Obs.Json.Int stats.violations);
           ]
         "fuzz.done");
  {
    stats;
    final_corpus = List.rev !corpus;
    failures = List.rev !failures;
  }
