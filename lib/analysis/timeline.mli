(** Per-process timelines of an execution.

    Digests a trace into per-process statistics: how many actions of
    each kind a process took, when it was first and last scheduled,
    what it performed, and how it ended (terminated, crashed, or
    still live when the executor stopped).  Works at any trace level;
    action-kind counts are only populated from [`Full] traces. *)

type fate = Terminated | Crashed | Unresolved

type row = {
  pid : int;
  first_step : int;  (** -1 when the process never appears *)
  last_step : int;
  dos : int;  (** jobs performed *)
  reads : int;  (** populated from [`Full] traces only *)
  writes : int;
  internals : int;
  fate : fate;
}

val of_trace : m:int -> Shm.Trace.t -> row array
(** [of_trace ~m trace] returns rows indexed [1..m] (index 0 is a
    dummy row). *)

val pp_row : Format.formatter -> row -> unit

val pp : Format.formatter -> row array -> unit
(** One line per process. *)
