(** Coverage-guided fuzzing engine.

    The middle tier between the exhaustive explorers ({!Explore},
    {!Pexplore} — sound, but confined to tiny instances) and blind
    Monte-Carlo sampling ({!Montecarlo}, [Fault.Chaos.soak] — scales,
    but wastes budget re-exercising equivalent interleavings): a
    feedback loop that keeps an input only when executing it reached a
    {!Fingerprint.cover} state not yet in a bounded seen table, and
    draws future mutants from those keepers.  Mazurkiewicz-equivalent
    rediscoveries hash equal and are discarded, so the budget
    concentrates on {e novel} behavior.

    The engine is generic in the input type: {!Fault.Fuzz}
    instantiates it over fault plans (schedule and fault-list mutation
    operators, chaos-engine execution); the tests instantiate it over
    toy inputs.  Coverage pruning here affects {e search order only},
    never verdicts — every executed input is still judged by its own
    oracles, and a violation is reported whether or not the input was
    novel (DESIGN.md §11). *)

type 'a exec = {
  states : int list;
      (** coverage fingerprints the execution reached, in order,
          duplicates allowed (the engine dedups against its table) *)
  violating : bool;  (** at least one oracle fired on this run *)
  pinned : 'a;
      (** the deterministic, replayable form of the input actually
          executed (e.g. the plan with its recorded schedule pinned);
          this is what enters the corpus and the failure list *)
}

type 'a harness = {
  mutate : Util.Prng.t -> 'a -> 'a;  (** must yield an executable input *)
  execute : 'a -> 'a exec;
}

type stats = {
  execs : int;  (** executions performed (seed runs included) *)
  kept : int;  (** mutants that reached a novel state and were kept *)
  corpus : int;  (** final corpus size, seeds included *)
  distinct_states : int;  (** seen-table misses — novel states found *)
  lookups : int;  (** total state observations fed to the table *)
  violations : int;  (** executions with [violating = true] *)
  first_violation_exec : int option;
      (** 1-based index of the first violating execution *)
  novelty : (int * int) list;
      (** sampled (execution index, cumulative distinct states) —
          the novelty curve, chronological *)
}

val hit_rate : stats -> float
(** Fraction of state observations already covered, in [0..1] —
    high late-run hit rate means coverage has saturated. *)

type 'a outcome = {
  stats : stats;
  final_corpus : 'a list;
      (** seeds first, then keepers in discovery order *)
  failures : 'a list;  (** violating (pinned) inputs, discovery order *)
}

val run :
  ?sink:Obs.Sink.t ->
  ?table_bits:int ->
  ?stop_on_violation:bool ->
  ?max_seconds:float ->
  ?on_keep:('a -> unit) ->
  ?on_exec:(stats -> unit) ->
  seed:int ->
  budget:int ->
  harness:'a harness ->
  seeds:'a list ->
  unit ->
  'a outcome
(** [run ~seed ~budget ~harness ~seeds ()] executes every seed input
    once (they are always kept, novel or not — the caller chose
    them), then spends the rest of the [budget] executions on
    mutants: pick a corpus parent (biased towards recent keepers),
    [harness.mutate] it, [harness.execute] the child, feed its states
    to the shared table, and keep the child's pinned form iff at
    least one state was new.

    Fully deterministic in [seed] (the clock is consulted only when
    [max_seconds] is given, and then only to stop early).

    [table_bits] sizes the bounded seen table
    ({!Fingerprint.create}; default {!Fingerprint.default_bits}).
    [stop_on_violation] (default [false]) ends the loop at the first
    violating execution.  [max_seconds] time-boxes the loop (checked
    between executions — CI nightly jobs).  [on_keep] fires for every
    corpus addition, seeds included — the persistence hook.
    [on_exec] fires after every execution with the running stats —
    the dashboard / Prometheus hook.

    Progress also flows to [sink]: a [fuzz.kept] instant per corpus
    addition, a [fuzz.violation] instant per violating run, and one
    [fuzz.done] summary record.

    @raise Invalid_argument on an empty seed list or [budget < 0]. *)
