type violation = { at_step : int; pid : int; what : string }

let pp_violation fmt v =
  Format.fprintf fmt "step %d, p%d: %s" v.at_step v.pid v.what

type pstate = Live | Dead_crashed | Dead_terminated

let check ~m trace =
  let states = Array.make (m + 1) Live in
  let last_step = ref (-1) in
  let rec go = function
    | [] -> Ok ()
    | { Shm.Trace.step; event } :: rest ->
        let p = Shm.Event.pid event in
        if p < 1 || p > m then
          Error { at_step = step; pid = p; what = "pid out of range" }
        else if step < !last_step then
          Error { at_step = step; pid = p; what = "steps went backwards" }
        else begin
          last_step := step;
          match (states.(p), event) with
          | Dead_crashed, Shm.Event.Restart _ ->
              states.(p) <- Live;
              go rest
          | Dead_crashed, _ ->
              Error { at_step = step; pid = p; what = "event after crash" }
          | Dead_terminated, _ ->
              Error
                { at_step = step; pid = p; what = "event after termination" }
          | Live, Shm.Event.Restart _ ->
              Error { at_step = step; pid = p; what = "restart while live" }
          | Live, Shm.Event.Crash _ ->
              states.(p) <- Dead_crashed;
              go rest
          | Live, Shm.Event.Terminate _ ->
              states.(p) <- Dead_terminated;
              go rest
          | Live, _ -> go rest
        end
  in
  go (Shm.Trace.entries trace)

let assert_ok ~m trace =
  match check ~m trace with
  | Ok () -> ()
  | Error v -> failwith (Format.asprintf "trace audit failed: %a" pp_violation v)
