(** ASCII Gantt charts of executions.

    Renders a trace as one lane per process over a fixed-width step
    axis, for eyeballing schedules in examples and debugging sessions:

    {v
    p1 |##D##D#D........T |
    p2 |###D#X            |
    p3 |....##D##D##D...T |
    v}

    Characters, by precedence within a bucket: ['X'] crash,
    ['T'] terminate, ['D'] at least one job performed, ['#'] other
    recorded activity (full traces), ['.'] no recorded event.  A lane
    goes blank after the process's crash or termination.

    At [`Outcomes] trace level only [D]/[X]/[T] marks appear — the
    idle dots then mean "no {e recorded} event", not "not scheduled". *)

val render : m:int -> ?width:int -> Shm.Trace.t -> string
(** [render ~m trace] with [width] buckets per lane (default 72).
    Returns the multi-line chart (trailing newline included); the
    empty trace renders header-only lanes. *)
