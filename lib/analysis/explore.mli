(** Bounded-exhaustive interleaving exploration (a tiny model
    checker).

    The theorems quantify over {e all} executions; stochastic testing
    samples them, this module enumerates them — every schedule of a
    small instance, or every schedule prefix up to a branching budget
    with a deterministic completion beyond it.  Automata are mutable,
    so each explored schedule re-executes a fresh instance built by
    the caller's [factory].

    Cost model: the number of explored executions is bounded by
    (number of live processes)^[branch_depth]; each execution replays
    its whole prefix.  Practical budgets are tiny instances (2–3
    processes, a handful of jobs) with [branch_depth] ≤ ~15 — enough
    to cover every announce/gather/check race of the two-process
    building block exhaustively (see the pairing and KK test suites).

    This is how the repository machine-checks the safety argument on
    {e complete} execution spaces rather than samples. *)

type stats = {
  executions : int;  (** complete executions visited *)
  fully_exhaustive : bool;
      (** true iff no execution hit the branching budget — i.e. the
          enumeration covered the whole execution space. *)
}

val run :
  factory:(unit -> Shm.Automaton.handle array) ->
  branch_depth:int ->
  max_steps:int ->
  on_execution:((int * int) list -> unit) ->
  unit ->
  stats
(** [run ~factory ~branch_depth ~max_steps ~on_execution ()] calls
    [on_execution] with the do-event log of every explored execution.
    Executions longer than [branch_depth] steps are completed
    round-robin; an execution exceeding [max_steps] raises [Failure]
    (non-termination of the automata under test).

    @raise Failure when [max_steps] is exceeded. *)
