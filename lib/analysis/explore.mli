(** Bounded-exhaustive model checking of process interleavings, with
    partial-order reduction, deterministic replay, and counterexample
    shrinking.

    The theorems quantify over {e all} executions; stochastic testing
    samples them, this module enumerates them.  Two strategies share
    one engine:

    - {!Brute_force} visits every interleaving — the oracle the
      reduced strategy is cross-validated against;
    - {!Por} prunes interleavings that only differ by commuting
      {e independent} actions (actions of different processes whose
      {!Shm.Footprint}s do not race on a register), using sleep sets
      plus a persistent-set rule: a process whose pending action is
      purely local ({!Shm.Footprint.Internal}) commutes with every
      future action of every other process, so it is explored {e
      alone} at that state.  At least one representative of every
      Mazurkiewicz trace class is still visited, so any property that
      is invariant under commuting independent actions — at-most-once
      safety, effectiveness, quiescence: all functions of the
      per-process [Do] subsequences — holds on all executions iff it
      holds on the explored ones.

    Automata are mutable, so the engine re-executes prefixes on fresh
    instances built by the caller's [factory].  The first child of
    each state is explored by stepping in place; only siblings pay a
    replay, so total cost is O(Σ execution lengths).

    Budgets: [branch_depth] bounds the number of {e branching
    decisions} (states where more than one candidate is explored)
    along any path — beyond it the execution is completed
    deterministically (round-robin) and [fully_exhaustive] is
    reported [false].  Straight-line suffixes are free, so a fully
    covered space means every branching point was expanded.
    [max_steps] turns non-termination into {!Max_steps_exceeded}. *)

exception
  Max_steps_exceeded of {
    schedule : int list;  (** the offending schedule prefix, chronological *)
    steps : int;  (** steps performed when the budget was hit *)
  }
(** Raised when a single execution exceeds [max_steps] — a would-be
    counterexample to wait-freedom (Lemma 4.3).  The schedule prefix
    can be fed back to {!replay} to reproduce it. *)

type stats = {
  executions : int;  (** complete executions visited *)
  fully_exhaustive : bool;
      (** true iff no path hit the branching budget — the enumeration
          covered the whole execution space (up to commutation under
          {!Por}). *)
}

type execution = {
  schedule : int list;  (** chronological pids, one per step performed *)
  dos : (int * int) list;  (** the do-event log, [(pid, job)] *)
  trace : Shm.Trace.t;  (** the full [`Outcomes] trace *)
}

type strategy =
  | Brute_force  (** enumerate every interleaving *)
  | Por  (** sleep-set + persistent-set partial-order reduction *)

(** {2 Engine internals}

    The pieces the exploration recursion is built from, exposed so the
    domain-parallel engine ({!Pexplore}) drives {e exactly} the same
    state machine — same child order, same sleep sets, same traces —
    instead of reimplementing it.  Regular callers want {!explore} /
    {!check}. *)

type inst
(** One live instance being driven forward: the handle array, the
    accumulating [`Outcomes] trace, and the schedule so far. *)

val make_inst : (unit -> Shm.Automaton.handle array) -> inst

val step_inst : max_steps:int -> inst -> int -> Shm.Event.t list
(** Step pid [p] once, recording its events in the instance trace;
    returns the events the action emitted.  @raise Max_steps_exceeded
    when the instance has already performed [max_steps] steps. *)

val complete_round_robin : max_steps:int -> inst -> unit
(** Finish the instance deterministically (round-robin to
    quiescence).  @raise Max_steps_exceeded. *)

val execution_of : inst -> execution

val inst_handles : inst -> Shm.Automaton.handle array
val inst_stepno : inst -> int

val inst_rev_sched : inst -> int list
(** The pids stepped so far, most recent first. *)

type children =
  | Terminal  (** no live process: a complete execution *)
  | Covered  (** all candidates asleep: subtree explored elsewhere *)
  | Children of (int * (int * Shm.Footprint.t) list) list
      (** children in exploration order, each with its sleep set *)

val plan_children :
  strategy ->
  sleep:(int * Shm.Footprint.t) list ->
  (int * Shm.Footprint.t) array ->
  children
(** [plan_children strategy ~sleep fps] decides, from the live
    footprints [fps] (as returned by {!Shm.Executor.live_footprints})
    and the current sleep set, which children the state has: the
    persistent-set restriction, sleep-set filtering, and the per-child
    sleep sets.  Single source of truth for both engines. *)

val explore :
  ?strategy:strategy ->
  ?sink:Obs.Sink.t ->
  factory:(unit -> Shm.Automaton.handle array) ->
  branch_depth:int ->
  max_steps:int ->
  on_execution:(execution -> unit) ->
  unit ->
  stats
(** Enumerate executions (default strategy {!Por}), calling
    [on_execution] on each.  A non-null [sink] (default
    {!Obs.Sink.null}) receives periodic [explore.progress] counters
    and a final [explore.done] record; progress is also reported at
    debug log level.  @raise Max_steps_exceeded. *)

val run :
  factory:(unit -> Shm.Automaton.handle array) ->
  branch_depth:int ->
  max_steps:int ->
  on_execution:((int * int) list -> unit) ->
  unit ->
  stats
(** Legacy brute-force entry point: [explore ~strategy:Brute_force]
    passing only the do-event log.  Kept as the cross-validation
    oracle for {!Por}.  @raise Max_steps_exceeded. *)

val replay :
  factory:(unit -> Shm.Automaton.handle array) ->
  ?max_steps:int ->
  ?complete:bool ->
  int list ->
  execution
(** [replay ~factory schedule] deterministically re-executes a
    recorded schedule on a fresh instance: each listed pid performs
    one step; entries naming a dead process are skipped (so shrunk
    schedules stay replayable).  With [complete] (default [true]) the
    run is then finished round-robin to quiescence, making the result
    a complete execution.  The returned [schedule] field is the {e
    effective} schedule — pids actually stepped, including the
    completion — and replaying it reproduces the execution exactly.
    [max_steps] defaults to 100_000.  @raise Max_steps_exceeded. *)

val canonical_do_log : (int * int) list -> (int * int list) list
(** The do-event log up to commutation of independent actions: jobs
    grouped per pid in program order, sorted by pid.  Two
    interleavings equivalent under commutation have equal canonical
    logs, so {!Brute_force} and {!Por} visit the same {e set} of
    canonical logs on a fully covered space. *)

val ddmin :
  violates:('a list -> bool) -> 'a list -> 'a list
(** Generic greedy delta-debugging minimization: starting from a list
    for which [violates] holds, repeatedly deletes contiguous chunks
    (halving down to single elements) as long as the property keeps
    holding, until no single element can be removed.  The result is a
    locally (1-)minimal violating sublist.  [violates input] must be
    [true]; otherwise the input is returned unchanged.  {!shrink} is
    this applied to schedules; the fault layer applies it to fault
    plans ({!Fault.Chaos}). *)

val shrink :
  factory:(unit -> Shm.Automaton.handle array) ->
  ?max_steps:int ->
  ?complete:bool ->
  violates:(execution -> bool) ->
  int list ->
  (int list * execution) option
(** [shrink ~factory ~violates schedule] greedily minimizes a
    violating schedule: starting from the effective schedule of
    [replay schedule], repeatedly deletes contiguous chunks (halving
    down to single steps) whose removal preserves [violates] on
    replay, until no single step can be removed — a locally minimal
    counterexample.  Returns [None] if [schedule] does not violate in
    the first place.  [complete] is passed through to every replay:
    leave it [true] for whole-execution properties (effectiveness,
    quiescence), set it [false] to minimize a bad {e prefix} of a
    safety property.  @raise Max_steps_exceeded. *)

type finding = {
  execution : execution;
  violations : Oracle.violation list;  (** why it was flagged *)
}

type report = {
  stats : stats;
  findings : finding list;
      (** violating executions, distinct by {!canonical_do_log},
          first-encountered order (at most 64 retained) *)
  violating : int;  (** total violating executions encountered *)
  shrunk : (int list * Oracle.violation list) option;
      (** the first finding's schedule, shrunk while it keeps firing
          at least one of the same oracles, with the violations of
          the shrunk replay *)
}

val check :
  ?strategy:strategy ->
  ?minimize:bool ->
  ?sink:Obs.Sink.t ->
  factory:(unit -> Shm.Automaton.handle array) ->
  branch_depth:int ->
  max_steps:int ->
  oracles:Oracle.t list ->
  unit ->
  report
(** Explore (default {!Por}) and judge every execution against the
    [oracles]; when a violation is found and [minimize] (default
    [true]), the first counterexample is shrunk before reporting.
    [sink] is threaded to {!explore}; each violating execution
    additionally emits an [explore.violation] instant naming the
    fired oracles.  @raise Max_steps_exceeded. *)

val check_executions :
  ?minimize:bool ->
  ?sink:Obs.Sink.t ->
  factory:(unit -> Shm.Automaton.handle array) ->
  max_steps:int ->
  oracles:Oracle.t list ->
  run:(on_execution:(execution -> unit) -> stats) ->
  unit ->
  report
(** The oracle-judging half of {!check}, parameterized over the
    enumeration: [run ~on_execution] must invoke [on_execution] once
    per complete execution and return the exploration stats.  This is
    how {!Pexplore.check} shares the finding-dedup/shrink logic with
    the sequential engine. *)
