module E = Explore

type stats = {
  executions : int;
  fully_exhaustive : bool;
  domains : int;
  work_items : int;
  steals : int;
  cache : Fingerprint.stats option;
}

(* A frontier work item: the schedule prefix reaching an unexplored
   node, plus everything the sequential recursion would carry there. *)
type open_item = {
  rev_prefix : int list;
  osleep : (int * Shm.Footprint.t) list;
  obranches : int;
  depth : int; (* List.length rev_prefix, cached *)
}

(* Items keep frontier-expansion byproducts in place so the merge can
   walk one array in DFS preorder. *)
type item =
  | Done of E.execution (* completed during expansion *)
  | Sub of open_item (* a subtree for the workers *)
  | Poison of exn (* Max_steps_exceeded hit during expansion *)

(* One instance being driven by a worker, with the incremental
   canonical-do-prefix hash the fingerprint needs. *)
type st = { inst : E.inst; acc : Fingerprint.acc }

let progress_every = 4096

let explore ?(strategy = E.Por) ?(sink = Obs.Sink.null) ?(domains = 1)
    ?(fingerprint = false) ?fingerprint_bits ?frontier ~factory ~branch_depth
    ~max_steps ~on_execution () =
  if domains < 1 then invalid_arg "Pexplore.explore: domains must be >= 1";
  let frontier_target =
    match frontier with
    | Some f -> max domains f
    | None -> max 64 (32 * domains)
  in
  let table =
    if fingerprint then Some (Fingerprint.create ?bits:fingerprint_bits ())
    else None
  in
  let truncated = Atomic.make false in
  let nprocs = Array.length (factory ()) in
  let feed st events =
    match table with
    | Some _ -> Fingerprint.acc_feed st.acc events
    | None -> ()
  in
  let replay_st rev_prefix =
    let st =
      { inst = E.make_inst factory; acc = Fingerprint.acc_create ~m:nprocs }
    in
    List.iter
      (fun p -> feed st (E.step_inst ~max_steps st.inst p))
      (List.rev rev_prefix);
    st
  in
  (* consult the shared seen-state table at node entry; false = keep
     exploring.  Used identically by frontier expansion and the
     workers, so every node is consulted exactly once: expansion
     enters the nodes it walks through, workers enter the subtree
     roots expansion handed over (children it planned but did not
     enter). *)
  let pruned_at st sleep =
    match table with
    | None -> false
    | Some tbl -> (
        match
          Fingerprint.state
            ~handles:(E.inst_handles st.inst)
            ~stepno:(E.inst_stepno st.inst)
            ~do_hash:(Fingerprint.acc_hash st.acc)
            ~sleep
        with
        | Some fp -> Fingerprint.seen tbl fp
        | None -> false)
  in

  (* ---- phase 1: grow a frontier of independent subtrees ----

     Starting from the root, repeatedly expand the shallowest open
     node: walk forward through single-child states in place (free,
     like the sequential engine's in-place first step) and split at
     the first branching state into one open item per child, in child
     order.  Expanding shallowest-first and replacing items in place
     keeps the item list in DFS preorder, which is what makes the
     merge deterministic. *)
  let items =
    let expansion_cap = 64 * frontier_target in
    let rec expand_walk st sleep branches =
      if pruned_at st sleep then []
      else
        let fps = Shm.Executor.live_footprints (E.inst_handles st.inst) in
        match E.plan_children strategy ~sleep fps with
        | E.Terminal -> [ Done (E.execution_of st.inst) ]
        | E.Covered -> []
        | E.Children plans -> (
            match plans with
            | _ :: _ :: _ when branches >= branch_depth ->
                Atomic.set truncated true;
                E.complete_round_robin ~max_steps st.inst;
                [ Done (E.execution_of st.inst) ]
            | [ (p, sl) ] ->
                feed st (E.step_inst ~max_steps st.inst p);
                expand_walk st sl branches
            | plans ->
                let branches = branches + 1 in
                let base_rev = E.inst_rev_sched st.inst in
                let depth = E.inst_stepno st.inst + 1 in
                List.map
                  (fun (p, sl) ->
                    Sub
                      {
                        rev_prefix = p :: base_rev;
                        osleep = sl;
                        obranches = branches;
                        depth;
                      })
                  plans)
    in
    let expand o =
      match
        let st = replay_st o.rev_prefix in
        expand_walk st o.osleep o.obranches
      with
      | expanded -> expanded
      | exception (E.Max_steps_exceeded _ as e) -> [ Poison e ]
    in
    let count_subs its =
      List.length (List.filter (function Sub _ -> true | _ -> false) its)
    in
    let shallowest its =
      List.fold_left
        (fun b it ->
          match (it, b) with
          | Sub o, None -> Some o.depth
          | Sub o, Some d -> Some (min d o.depth)
          | _, b -> b)
        None its
    in
    let rec grow n its =
      match shallowest its with
      | None -> its
      | Some _ when n >= expansion_cap || count_subs its >= frontier_target ->
          its
      | Some d ->
          let replaced = ref false in
          let its =
            List.concat_map
              (fun it ->
                match it with
                | Sub o when (not !replaced) && o.depth = d ->
                    replaced := true;
                    expand o
                | it -> [ it ])
              its
          in
          grow (n + 1) its
    in
    Array.of_list
      (grow 0 [ Sub { rev_prefix = []; osleep = []; obranches = 0; depth = 0 } ])
  in

  (* ---- phase 2: workers drain the frontier ---- *)
  let n_items = Array.length items in
  let results = Array.make n_items ([] : E.execution list) in
  let exns = Array.make n_items (None : exn option) in
  let steals = Atomic.make 0 in
  (* each slot is written by exactly one worker (deque ops are
     mutually exclusive), and Domain.join orders those writes before
     the merge reads them *)
  let assign = Array.make (max domains 1) [] in
  let n_subs = ref 0 in
  Array.iteri
    (fun i it ->
      match it with
      | Sub o ->
          let d = !n_subs mod domains in
          assign.(d) <- (i, o) :: assign.(d);
          incr n_subs
      | Done _ | Poison _ -> ())
    items;
  let deques =
    Array.map (fun l -> Multicore.Wsdeque.of_list (List.rev l)) assign
  in
  (* The worker's recursion mirrors [Explore]'s node function exactly
     — same plan_children, same in-place first child, same sibling
     replays — so with the cache off the buffered executions are
     byte-identical to the sequential engine's, in order.  The cache
     consult happens at node entry: a hit means an equal-fingerprint
     node was already expanded somewhere, and this subtree's canonical
     do-logs are (up to hash collision) a subset of that one's. *)
  let rec dfs st sleep branches buf =
    if not (pruned_at st sleep) then
      let fps = Shm.Executor.live_footprints (E.inst_handles st.inst) in
      match E.plan_children strategy ~sleep fps with
      | E.Terminal -> buf := E.execution_of st.inst :: !buf
      | E.Covered -> ()
      | E.Children plans -> (
          match plans with
          | _ :: _ :: _ when branches >= branch_depth ->
              Atomic.set truncated true;
              E.complete_round_robin ~max_steps st.inst;
              buf := E.execution_of st.inst :: !buf
          | plans -> (
              let branches =
                match plans with _ :: _ :: _ -> branches + 1 | _ -> branches
              in
              match plans with
              | [] -> assert false
              | (p0, sl0) :: deferred ->
                  let base_rev = E.inst_rev_sched st.inst in
                  feed st (E.step_inst ~max_steps st.inst p0);
                  dfs st sl0 branches buf;
                  List.iter
                    (fun (p, sl) ->
                      dfs (replay_st (p :: base_rev)) sl branches buf)
                    deferred))
  in
  let run_sub (idx, o) =
    let buf = ref [] in
    (try
       let st = replay_st o.rev_prefix in
       dfs st o.osleep o.obranches buf
     with E.Max_steps_exceeded _ as e -> exns.(idx) <- Some e);
    results.(idx) <- List.rev !buf
  in
  let worker wid () =
    let rec next k =
      if k = 0 then
        match Multicore.Wsdeque.pop deques.(wid) with
        | Some s -> Some s
        | None -> next 1
      else if k >= domains then None
      else
        let v = (wid + k) mod domains in
        match Multicore.Wsdeque.steal deques.(v) with
        | Some s ->
            Atomic.incr steals;
            Some s
        | None -> next (k + 1)
    in
    let rec loop () =
      match next 0 with
      | None -> ()
      | Some s ->
          run_sub s;
          loop ()
    in
    loop ()
  in
  let doms = Array.init domains (fun wid -> Domain.spawn (worker wid)) in
  Array.iter Domain.join doms;

  (* ---- phase 3: deterministic merge, on the caller's domain ----

     Items are in DFS preorder and each buffer is in DFS order, so
     emitting them in sequence reproduces the sequential emission
     stream exactly; which domain explored which subtree is
     invisible.  A recorded Max_steps_exceeded is re-raised at the
     position the sequential engine would have raised it, after the
     executions that precede it. *)
  let observing = not (Obs.Sink.is_null sink) in
  let executions = ref 0 in
  let emit e =
    incr executions;
    if !executions mod progress_every = 0 then begin
      if observing then
        Obs.Sink.emit sink
          (Obs.Sink.record ~ts:!executions ~kind:Obs.Sink.Counter
             ~args:[ ("executions", Obs.Json.Int !executions) ]
             "pexplore.progress");
      Util.Logging.debug "pexplore: %d executions merged" !executions
    end;
    on_execution e
  in
  Array.iteri
    (fun i it ->
      match it with
      | Done e -> emit e
      | Poison e -> raise e
      | Sub _ ->
          List.iter emit results.(i);
          (match exns.(i) with Some e -> raise e | None -> ()))
    items;
  let stats =
    {
      executions = !executions;
      fully_exhaustive = not (Atomic.get truncated);
      domains;
      work_items = !n_subs;
      steals = Atomic.get steals;
      cache = Option.map Fingerprint.stats table;
    }
  in
  if observing then begin
    let cache_args =
      match stats.cache with
      | None -> []
      | Some c ->
          [
            ("cache_hits", Obs.Json.Int c.Fingerprint.hits);
            ("cache_misses", Obs.Json.Int c.Fingerprint.misses);
            ("cache_evictions", Obs.Json.Int c.Fingerprint.evictions);
          ]
    in
    Obs.Sink.emit sink
      (Obs.Sink.record ~ts:!executions ~kind:Obs.Sink.Counter
         ~args:
           ([
              ("executions", Obs.Json.Int stats.executions);
              ("fully_exhaustive", Obs.Json.Bool stats.fully_exhaustive);
              ("domains", Obs.Json.Int stats.domains);
              ("work_items", Obs.Json.Int stats.work_items);
              ("steals", Obs.Json.Int stats.steals);
            ]
           @ cache_args)
         "pexplore.done")
  end;
  Util.Logging.debug
    "pexplore: done, %d executions over %d items on %d domains (%d steals)"
    stats.executions stats.work_items stats.domains stats.steals;
  stats

let check ?strategy ?minimize ?(sink = Obs.Sink.null) ?domains ?fingerprint
    ?fingerprint_bits ?frontier ~factory ~branch_depth ~max_steps ~oracles ()
    =
  let pstats : stats option ref = ref None in
  let report =
    E.check_executions ?minimize ~sink ~factory ~max_steps ~oracles
      ~run:(fun ~on_execution ->
        let s =
          explore ?strategy ~sink ?domains ?fingerprint ?fingerprint_bits
            ?frontier ~factory ~branch_depth ~max_steps ~on_execution ()
        in
        pstats := Some s;
        {
          E.executions = s.executions;
          fully_exhaustive = s.fully_exhaustive;
        })
      ()
  in
  match !pstats with Some s -> (report, s) | None -> assert false
