(** Domain-parallel exploration with deterministic merge.

    The same search {!Explore} performs, split across OCaml 5 domains:

    + {b Frontier expansion} (caller's domain): walk the exploration
      tree shallowest-first, splitting at branching states, until
      there are enough independent subtrees (~32 per domain) to
      balance; the frontier stays in DFS preorder.
    + {b Work-stealing drain}: subtrees are dealt round-robin onto
      per-domain deques ({!Multicore.Wsdeque}); each worker explores
      its items depth-first with the {e same} recursion as the
      sequential engine (via {!Explore.plan_children}), buffering
      completed executions per item, and steals from the back of
      other deques when its own runs dry.
    + {b Deterministic merge} (caller's domain): buffers are emitted
      in frontier order, so the [on_execution] stream — and therefore
      canonical do-log sets, violation sets, and counts — is {e
      byte-identical} to sequential {!Explore.explore}, whatever the
      domain scheduling did.  Even a {!Explore.Max_steps_exceeded} is
      re-raised at its sequential position.

    With [fingerprint] set, workers additionally consult a shared
    {!Fingerprint.table} at every node and prune already-seen states.
    Pruning preserves the {e set} of canonical do-logs and all oracle
    verdicts (oracles are functions of canonical do-logs), but not
    execution {e counts} — so the differential tests compare streams
    with the cache off and sets with it on.  The cache silently
    disables itself on instances containing opaque automata
    ({!Shm.Automaton.handle}[.fingerprint] = [None]). *)

type stats = {
  executions : int;
  fully_exhaustive : bool;
  domains : int;
  work_items : int;  (** subtrees handed to the workers *)
  steals : int;  (** items taken from another domain's deque *)
  cache : Fingerprint.stats option;  (** [Some] iff [fingerprint] was set *)
}

val explore :
  ?strategy:Explore.strategy ->
  ?sink:Obs.Sink.t ->
  ?domains:int ->
  ?fingerprint:bool ->
  ?fingerprint_bits:int ->
  ?frontier:int ->
  factory:(unit -> Shm.Automaton.handle array) ->
  branch_depth:int ->
  max_steps:int ->
  on_execution:(Explore.execution -> unit) ->
  unit ->
  stats
(** Enumerate executions on [domains] (default 1) domains.
    [on_execution] runs on the caller's domain during the merge and
    need not be thread-safe.  [fingerprint] (default false) enables
    the state cache, [fingerprint_bits] its size
    ({!Fingerprint.default_bits}), [frontier] the expansion target
    (default 32 × domains, min 64).  A non-null [sink] receives
    [pexplore.progress] counters and a final [pexplore.done] record
    carrying domain/steal/cache statistics.
    @raise Explore.Max_steps_exceeded as the sequential engine
    would. *)

val check :
  ?strategy:Explore.strategy ->
  ?minimize:bool ->
  ?sink:Obs.Sink.t ->
  ?domains:int ->
  ?fingerprint:bool ->
  ?fingerprint_bits:int ->
  ?frontier:int ->
  factory:(unit -> Shm.Automaton.handle array) ->
  branch_depth:int ->
  max_steps:int ->
  oracles:Oracle.t list ->
  unit ->
  Explore.report * stats
(** {!Explore.check} over the parallel enumeration — identical
    finding/shrink logic via {!Explore.check_executions}, plus the
    parallel stats.  @raise Explore.Max_steps_exceeded. *)
