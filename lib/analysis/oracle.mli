(** Trace oracles: reusable correctness checkers over executions.

    The paper's claims are predicates over {e traces}: at-most-once
    safety (Definition 2.2/Lemma 4.1), the effectiveness floor
    [n − (β + m − 2)] (Theorem 4.4) and quiescence/wait-freedom
    (Lemma 4.3).  This module packages each as a named, composable
    checker consuming an [`Outcomes]-level {!Shm.Trace.t}, so the
    model checker ({!Explore.check}), the stochastic benchmark
    harness (E1/E10) and the unit tests all assert the {e same}
    predicate instead of re-implementing ad-hoc variants.

    An oracle never inspects algorithm state — observable behaviour
    only, exactly like {!Core.Spec} (which supplies the underlying
    measures). *)

type violation = {
  oracle : string;  (** name of the oracle that fired *)
  detail : string;  (** human-readable description of the breach *)
}

type t = {
  name : string;
  check : Shm.Trace.t -> violation list;
      (** Empty list = the trace satisfies the property. *)
}

val at_most_once : t
(** Fires once per job performed more than once (Definition 2.2),
    naming the job and the first two performing processes. *)

val effectiveness : floor:int -> t
(** Fires when the number of {e distinct} jobs performed is below
    [floor] (clamped at 0).  The caller picks the theorem's bound. *)

val kk_effectiveness : n:int -> m:int -> beta:int -> t
(** {!effectiveness} at Theorem 4.4's floor [n − (β + m − 2)]. *)

val recovery_effectiveness : n:int -> m:int -> beta:int -> t
(** The recovery-aware variant for crash-recovery executions: the
    floor is [n − (β + m − 2) − r] where [r] is the number of
    [Restart] events in the trace — each restart conservatively
    forfeits at most one job (the re-marked pre-crash announcement,
    see {!Core.Kk} and DESIGN.md §7).  Equivalent to
    {!kk_effectiveness} on restart-free traces.  Vacuous (never fires)
    when every process ends the run permanently crashed — its last
    lifecycle event a [Crash] with no later [Restart] — because the
    theorems presume at most [m − 1] permanent failures, and a
    statically-valid plan can still strand a pending restart beyond
    the run's end. *)

val ledger_agreement : n:int -> m:int -> beta:int -> t
(** Ledger ↔ oracle reconciliation (DESIGN.md §8).  Rebuilds the
    {!Obs.Ledger} from the trace and fires unless (a) the per-job
    fates partition the universe
    ([performed + forfeited + lost + recovered + violations = n]),
    (b) no job is doubly performed, (c) the ledger's performed count
    equals {!Core.Spec.do_count}, and (d) the non-performed buckets
    fit in the recovery-aware slack [β + m − 2 + r].  Meaningful on
    traces of [~provenance:true] runs (it still checks (a)–(c)
    without provenance events, but lost/forfeited attribution needs
    announce marks). *)

val quiescence : m:int -> t
(** Fires per process in [1..m] whose {e last} lifecycle event is
    neither a termination nor a crash (a restart re-opens a crashed
    process) — on an execution run to completion this is a
    wait-freedom breach (Lemma 4.3).  Only meaningful on completed
    executions. *)

val check_all : t list -> Shm.Trace.t -> violation list
(** All violations, in oracle order. *)

val assert_ok : t list -> Shm.Trace.t -> unit
(** @raise Failure listing every violation, if any. *)

val pp_violation : Format.formatter -> violation -> unit
