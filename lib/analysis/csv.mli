(** CSV export of executions and experiment series.

    Minimal, dependency-free CSV writing (RFC-4180-style quoting) so
    experiment results and traces can be post-processed outside
    OCaml.  Used by the CLI's [--csv] options and by downstream
    plotting. *)

val escape : string -> string
(** Quote a field if it contains a comma, quote or newline. *)

val row_to_string : string list -> string
(** One CSV line, no trailing newline. *)

val to_string : header:string list -> string list list -> string
(** Full document with header line and trailing newline. *)

val write_file : path:string -> header:string list -> string list list -> unit

val of_do_events : (int * int) list -> string
(** Columns [seq,pid,job]: the linearized perform log. *)

val of_timeline : Timeline.row array -> string
(** Columns [pid,first_step,last_step,dos,reads,writes,internals,fate]. *)
