let precedence = function
  | 'R' -> 5
  | 'X' -> 4
  | 'T' -> 3
  | 'D' -> 2
  | '#' -> 1
  | _ -> 0

let mark_of_event (e : Shm.Event.t) =
  match e with
  | Shm.Event.Crash _ -> 'X'
  | Shm.Event.Restart _ -> 'R'
  | Shm.Event.Terminate _ -> 'T'
  | Shm.Event.Do _ -> 'D'
  | Shm.Event.Read _ | Shm.Event.Write _ | Shm.Event.Internal _
  | Shm.Event.Pick _ | Shm.Event.Announce _ | Shm.Event.Forfeit _
  | Shm.Event.Recover _ ->
      '#'

let render ~m ?(width = 72) trace =
  if m < 1 then invalid_arg "Gantt.render: m must be >= 1";
  if width < 1 then invalid_arg "Gantt.render: width must be >= 1";
  let entries = Shm.Trace.entries trace in
  let max_step =
    List.fold_left (fun acc { Shm.Trace.step; _ } -> max acc step) 0 entries
  in
  let lanes = Array.make_matrix (m + 1) width '.' in
  let ended = Array.make (m + 1) max_int in
  let bucket step =
    if max_step = 0 then 0 else min (width - 1) (step * width / (max_step + 1))
  in
  List.iter
    (fun { Shm.Trace.step; event } ->
      let p = Shm.Event.pid event in
      if p >= 1 && p <= m then begin
        let b = bucket step in
        let c = mark_of_event event in
        if precedence c > precedence lanes.(p).(b) then lanes.(p).(b) <- c;
        match event with
        | Shm.Event.Crash _ | Shm.Event.Terminate _ ->
            ended.(p) <- min ended.(p) b
        | Shm.Event.Restart _ -> ended.(p) <- max_int
        | _ -> ()
      end)
    entries;
  let buf = Buffer.create ((m + 1) * (width + 12)) in
  for p = 1 to m do
    Buffer.add_string buf (Printf.sprintf "p%-3d |" p);
    for b = 0 to width - 1 do
      Buffer.add_char buf (if b > ended.(p) then ' ' else lanes.(p).(b))
    done;
    Buffer.add_string buf "|\n"
  done;
  Buffer.contents buf
