(** Monte-Carlo sweeps over seeds.

    The theorems quantify over all executions; the benches approximate
    worst cases by sampling many seeded runs.  This module is the
    sampling loop: run a seeded experiment [k] times, collect one
    float observable per run, and summarize the distribution.  Every
    run is reproducible from its seed, so an outlier reported in a
    summary can be re-run in isolation. *)

type summary = {
  runs : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  argmin_seed : int;  (** seed that produced the minimum *)
  argmax_seed : int;
}

val sweep : seeds:int list -> f:(seed:int -> float) -> summary
(** [sweep ~seeds ~f] evaluates [f] once per seed.
    @raise Invalid_argument on an empty seed list. *)

val sweep_runs : k:int -> ?base:int -> f:(seed:int -> float) -> unit -> summary
(** [sweep_runs ~k ~f ()] uses seeds [base, base+1, ..., base+k-1]
    (default [base] 0). *)

val pp : Format.formatter -> summary -> unit
