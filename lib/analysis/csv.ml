let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let escape s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let row_to_string fields = String.concat "," (List.map escape fields)

let to_string ~header rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (row_to_string header);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (row_to_string row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let write_file ~path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~header rows))

let of_do_events dos =
  to_string
    ~header:[ "seq"; "pid"; "job" ]
    (List.mapi
       (fun i (p, j) -> [ string_of_int i; string_of_int p; string_of_int j ])
       dos)

let of_timeline rows =
  let body =
    Array.to_list rows
    |> List.filteri (fun i _ -> i >= 1)
    |> List.map (fun (r : Timeline.row) ->
           [
             string_of_int r.pid;
             string_of_int r.first_step;
             string_of_int r.last_step;
             string_of_int r.dos;
             string_of_int r.reads;
             string_of_int r.writes;
             string_of_int r.internals;
             (match r.fate with
             | Timeline.Terminated -> "terminated"
             | Timeline.Crashed -> "crashed"
             | Timeline.Unresolved -> "unresolved");
           ])
  in
  to_string
    ~header:
      [ "pid"; "first_step"; "last_step"; "dos"; "reads"; "writes";
        "internals"; "fate" ]
    body
