type summary = {
  runs : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  argmin_seed : int;
  argmax_seed : int;
}

let sweep ~seeds ~f =
  if seeds = [] then invalid_arg "Montecarlo.sweep: empty seed list";
  let observations = List.map (fun seed -> (seed, f ~seed)) seeds in
  let values = Array.of_list (List.map snd observations) in
  let best cmp =
    List.fold_left
      (fun (s0, v0) (s, v) -> if cmp v v0 then (s, v) else (s0, v0))
      (List.hd observations) (List.tl observations)
  in
  let argmin_seed, min = best ( < ) in
  let argmax_seed, max = best ( > ) in
  {
    runs = Array.length values;
    mean = Util.Stats.mean values;
    stddev = Util.Stats.stddev values;
    min;
    max;
    p50 = Util.Stats.median values;
    p95 = Util.Stats.percentile values 95.;
    argmin_seed;
    argmax_seed;
  }

let sweep_runs ~k ?(base = 0) ~f () =
  sweep ~seeds:(List.init k (fun i -> base + i)) ~f

let pp fmt s =
  Format.fprintf fmt
    "runs=%d mean=%.2f sd=%.2f min=%.2f (seed %d) p50=%.2f p95=%.2f max=%.2f \
     (seed %d)"
    s.runs s.mean s.stddev s.min s.argmin_seed s.p50 s.p95 s.max s.argmax_seed
