(* State fingerprints and the shared seen-state table.

   Soundness argument (DESIGN.md §9, condensed): a fingerprint is a
   hash of (step count, canonical do-prefix, full machine state, sleep
   set).  Per-process state hashes come from the automaton's own
   [fingerprint] closure, which covers its locals plus the content
   hashes of the shared structures it can read — so two nodes with
   equal fingerprints have (up to hash collision) identical residual
   behavior under every schedule, identical sleep-set filtering, and
   canonically-equal do-logs so far.  Pruning the second node
   therefore removes only executions whose canonical do-log — and
   hence every oracle verdict, oracles being functions of the
   per-process Do subsequences — is already produced by the first
   node's subtree.  Including the step count makes a node's
   fingerprint differ from every ancestor's (step counts strictly
   increase along a path), so pruning can never cut a cycle short;
   commutation-equivalent prefixes still collide because they have
   equal length by construction. *)

let dead_mark = Util.Mix.int 0xDEAD

let do_hash_add acc ~pid ~index ~job =
  (* commutative across processes (plain addition), order-sensitive
     within a process (the per-pid [index]) — exactly the equivalence
     of canonical do-logs *)
  acc + Util.Mix.triple pid index job

type acc = { mutable dh : int; counts : int array (* per pid, 1-based *) }

let acc_create ~m = { dh = 0; counts = Array.make (m + 1) 0 }

let acc_feed acc events =
  List.iter
    (function
      | Shm.Event.Do { p; job } ->
          acc.counts.(p) <- acc.counts.(p) + 1;
          acc.dh <- do_hash_add acc.dh ~pid:p ~index:acc.counts.(p) ~job
      | _ -> ())
    events

let acc_hash acc = acc.dh

exception Opaque

let fold_handles handles =
  Array.fold_left
    (fun h (a : Shm.Automaton.handle) ->
      if a.Shm.Automaton.alive () then
        match a.Shm.Automaton.fingerprint () with
        | Some fp -> Util.Mix.combine h fp
        | None -> raise Opaque
      else Util.Mix.combine h dead_mark)
    (Util.Mix.int 0x51) handles

(* The fuzzer's coverage abstraction is deliberately BEHAVIORAL, not
   the explorer's full machine state: the per-process phase vector,
   per-pid do counts (pid-indexed — invariant under commutation of
   independent actions, the Mazurkiewicz quotient), and the fault
   count.  Job identities, register contents, PRNG seeds and step
   counts are all excluded on purpose: with them every fresh random
   run walks through near-unique states and blind sampling racks up
   "novelty" from sheer entropy; without them equivalent behaviors
   collide across runs, the common region saturates within a few
   dozen executions, and a novel fingerprint means a genuinely new
   behavioral situation (a phase alignment, a crash/restart depth)
   rather than a new random draw. *)
let cover ~handles ~do_counts ~faults =
  let h =
    Array.fold_left
      (fun h (a : Shm.Automaton.handle) ->
        if a.Shm.Automaton.alive () then
          Util.Mix.combine h (Util.Mix.string (a.Shm.Automaton.phase ()))
        else Util.Mix.combine h dead_mark)
      (Util.Mix.int 0x5C) handles
  in
  let h = Array.fold_left Util.Mix.combine h do_counts in
  Util.Mix.combine h faults

let state ~handles ~stepno ~do_hash ~sleep =
  match fold_handles handles with
  | exception Opaque -> None
  | h ->
      let h = Util.Mix.combine h stepno in
      let h = Util.Mix.combine h do_hash in
      let sleep_h =
        (* commutative: the sleep set is a set; its construction order
           is deterministic anyway, but don't depend on it *)
        List.fold_left
          (fun a (p, f) ->
            a + Util.Mix.pair p (Util.Mix.string (Shm.Footprint.to_string f)))
          0 sleep
      in
      Some (Util.Mix.combine h sleep_h)

(* ---- the shared seen-state table ---- *)

(* Bounded open addressing over an array of boxed [Atomic.t] slots;
   0 = empty (a real fingerprint of 0 is remapped).  Lossiness is
   safe in both directions: losing an entry (probe limit overwrite,
   lost CAS race) only costs re-exploration, never soundness.  The
   table is shared by all exploring domains. *)

type table = {
  slots : int Atomic.t array;
  mask : int;
  probe_limit : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
}

type stats = { hits : int; misses : int; evictions : int; capacity : int }

let default_bits = 20

let create ?(bits = default_bits) () =
  let bits = max 4 (min 28 bits) in
  let size = 1 lsl bits in
  {
    slots = Array.init size (fun _ -> Atomic.make 0);
    mask = size - 1;
    probe_limit = 8;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
  }

let stats (t : table) =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    evictions = Atomic.get t.evictions;
    capacity = t.mask + 1;
  }

(* [seen t fp] — true if [fp] was already recorded; otherwise records
   it and returns false. *)
let seen t fp =
  let fp = if fp = 0 then 1 else fp in
  let base = Util.Mix.int fp land t.mask in
  let rec probe i =
    if i >= t.probe_limit then begin
      (* bucket run full: overwrite the base slot.  The displaced
         fingerprint may be re-explored later — lossy but sound. *)
      Atomic.set t.slots.(base) fp;
      Atomic.incr t.evictions;
      Atomic.incr t.misses;
      false
    end
    else
      let slot = t.slots.((base + i) land t.mask) in
      let v = Atomic.get slot in
      if v = fp then begin
        Atomic.incr t.hits;
        true
      end
      else if v = 0 then
        if Atomic.compare_and_set slot 0 fp then begin
          Atomic.incr t.misses;
          false
        end
        else if Atomic.get slot = fp then begin
          (* another domain inserted the same state first *)
          Atomic.incr t.hits;
          true
        end
        else probe (i + 1)
      else probe (i + 1)
  in
  probe 0
