type violation = { oracle : string; detail : string }

type t = { name : string; check : Shm.Trace.t -> violation list }

let at_most_once =
  let name = "at-most-once" in
  let check trace =
    (* every (job -> first pid) plus one violation per repeat; the
       whole log is scanned so multiple bad jobs each get reported *)
    let first = Hashtbl.create 64 in
    List.fold_left
      (fun acc (p, job) ->
        match Hashtbl.find_opt first job with
        | None ->
            Hashtbl.add first job p;
            acc
        | Some q ->
            {
              oracle = name;
              detail =
                Printf.sprintf "job %d performed again by p%d (first by p%d)"
                  job p q;
            }
            :: acc)
      []
      (Shm.Trace.do_events trace)
    |> List.rev
  in
  { name; check }

let effectiveness ~floor =
  let name = "effectiveness" in
  let floor = max 0 floor in
  let check trace =
    let count = Core.Spec.do_count (Shm.Trace.do_events trace) in
    if count >= floor then []
    else
      [
        {
          oracle = name;
          detail =
            Printf.sprintf "%d distinct jobs performed, floor is %d" count
              floor;
        };
      ]
  in
  { name; check }

let kk_effectiveness ~n ~m ~beta = effectiveness ~floor:(n - (beta + m - 2))

let recovery_effectiveness ~n ~m ~beta =
  let name = "recovery-effectiveness" in
  let base = n - (beta + m - 2) in
  let check trace =
    (* The effectiveness theorems presume at most m-1 processes fail
       PERMANENTLY — some survivor remains to drain the work.  That is
       a runtime property, not a static one: a plan whose every crash
       is paired with a restart can still leave a process dead forever
       when the restart step lies beyond the run's actual end (the
       executor stops once no live pid remains, so pending restarts
       never fire).  A pid is permanently dead iff its last lifecycle
       event is a crash; when every pid ends that way there is no
       survivor for the theorem to charge, and the floor is vacuous. *)
    let dead = Array.make (m + 1) false in
    List.iter
      (fun { Shm.Trace.event; _ } ->
        match event with
        | Shm.Event.Crash { p } -> if p >= 1 && p <= m then dead.(p) <- true
        | Shm.Event.Restart { p } | Shm.Event.Terminate { p } ->
            if p >= 1 && p <= m then dead.(p) <- false
        | _ -> ())
      (Shm.Trace.entries trace);
    let permanently_dead = ref 0 in
    for p = 1 to m do
      if dead.(p) then incr permanently_dead
    done;
    (* each restart may conservatively burn one job (the re-marked
       announcement, see Core.Kk.restart), so the floor degrades by
       one per observed restart *)
    let restarts = List.length (Shm.Trace.restarts trace) in
    let floor = max 0 (base - restarts) in
    let count = Core.Spec.do_count (Shm.Trace.do_events trace) in
    if !permanently_dead >= m || count >= floor then []
    else
      [
        {
          oracle = name;
          detail =
            Printf.sprintf
              "%d distinct jobs performed, recovery floor is %d (base %d, %d \
               restarts)"
              count floor base restarts;
        };
      ]
  in
  { name; check }

let quiescence ~m =
  let name = "quiescence" in
  let check trace =
    (* a process is settled iff its LAST lifecycle event is a crash or
       termination — a restart re-opens it *)
    let settled = Array.make (m + 1) false in
    List.iter
      (fun { Shm.Trace.event; _ } ->
        match event with
        | Shm.Event.Crash { p } | Shm.Event.Terminate { p } ->
            if p >= 1 && p <= m then settled.(p) <- true
        | Shm.Event.Restart { p } ->
            if p >= 1 && p <= m then settled.(p) <- false
        | _ -> ())
      (Shm.Trace.entries trace);
    let missing = ref [] in
    for p = m downto 1 do
      if not settled.(p) then missing := p :: !missing
    done;
    List.map
      (fun p ->
        {
          oracle = name;
          detail = Printf.sprintf "p%d neither terminated nor crashed" p;
        })
      !missing
  in
  { name; check }

let ledger_agreement ~n ~m ~beta =
  let name = "ledger-agreement" in
  let check trace =
    (* Rebuild the provenance ledger from the same trace and demand
       exact reconciliation with the effectiveness oracles: the fates
       partition the job universe, the performed count equals the
       spec's Do(α) measure, and the non-performed buckets stay within
       the recovery-aware bound β + m − 2 + r. *)
    let ledger = Obs.Ledger.of_trace ~n ~m trace in
    let c = Obs.Ledger.counts ledger in
    let do_count = Core.Spec.do_count (Shm.Trace.do_events trace) in
    let restarts = List.length (Shm.Trace.restarts trace) in
    let slack = (beta + m - 2) + restarts in
    let vio fmt = Printf.ksprintf (fun detail -> { oracle = name; detail }) fmt in
    let checks =
      [
        ( lazy (Obs.Ledger.reconciles ledger),
          lazy
            (vio
               "fates do not partition the universe: %d+%d+%d+%d+%d <> n=%d"
               c.Obs.Ledger.performed c.Obs.Ledger.forfeited c.Obs.Ledger.lost
               c.Obs.Ledger.recovered c.Obs.Ledger.violations n) );
        ( lazy (c.Obs.Ledger.violations = 0),
          lazy
            (vio "%d job(s) doubly performed: %s" c.Obs.Ledger.violations
               (String.concat "; "
                  (List.filter_map
                     (fun j -> Some (Obs.Ledger.explain ledger j))
                     (Obs.Ledger.violations ledger)))) );
        ( lazy (c.Obs.Ledger.performed = do_count),
          lazy
            (vio "ledger counts %d performed, spec Do(α) counts %d"
               c.Obs.Ledger.performed do_count) );
        ( lazy
            (c.Obs.Ledger.forfeited + c.Obs.Ledger.lost + c.Obs.Ledger.recovered
             <= slack
            || c.Obs.Ledger.performed >= n - slack),
          lazy
            (vio
               "%d jobs not performed (forfeited %d + lost %d + recovered %d) \
                exceeds the recovery floor slack β+m−2+r = %d"
               (c.Obs.Ledger.forfeited + c.Obs.Ledger.lost
              + c.Obs.Ledger.recovered)
               c.Obs.Ledger.forfeited c.Obs.Ledger.lost c.Obs.Ledger.recovered
               slack) );
      ]
    in
    List.filter_map
      (fun (ok, v) -> if Lazy.force ok then None else Some (Lazy.force v))
      checks
  in
  { name; check }

let check_all oracles trace =
  List.concat_map (fun o -> o.check trace) oracles

let pp_violation fmt v = Format.fprintf fmt "[%s] %s" v.oracle v.detail

let assert_ok oracles trace =
  match check_all oracles trace with
  | [] -> ()
  | vs ->
      failwith
        (String.concat "; "
           (List.map (Format.asprintf "%a" pp_violation) vs))
