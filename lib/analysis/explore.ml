exception Max_steps_exceeded of { schedule : int list; steps : int }

type stats = { executions : int; fully_exhaustive : bool }

type execution = {
  schedule : int list;
  dos : (int * int) list;
  trace : Shm.Trace.t;
}

type strategy = Brute_force | Por

(* ---- one live instance being driven forward ---- *)

type inst = {
  handles : Shm.Automaton.handle array;
  trace : Shm.Trace.t;
  mutable stepno : int;
  mutable rev_sched : int list; (* pids stepped so far, reversed *)
}

let make_inst factory =
  {
    handles = factory ();
    trace = Shm.Trace.create `Outcomes;
    stepno = 0;
    rev_sched = [];
  }

let step_inst ~max_steps inst p =
  if inst.stepno >= max_steps then
    raise
      (Max_steps_exceeded
         { schedule = List.rev inst.rev_sched; steps = inst.stepno });
  let events = inst.handles.(p - 1).Shm.Automaton.step () in
  List.iter (Shm.Trace.record inst.trace ~step:inst.stepno) events;
  inst.stepno <- inst.stepno + 1;
  inst.rev_sched <- p :: inst.rev_sched;
  events

let inst_handles inst = inst.handles
let inst_stepno inst = inst.stepno
let inst_rev_sched inst = inst.rev_sched

let execution_of inst =
  {
    schedule = List.rev inst.rev_sched;
    dos = Shm.Trace.do_events inst.trace;
    trace = inst.trace;
  }

(* Finish deterministically (round-robin) — used beyond the branching
   budget and by [replay ~complete:true]. *)
let complete_round_robin ~max_steps inst =
  let sched = Shm.Schedule.round_robin () in
  let rec go () =
    let live = Shm.Executor.live_pids inst.handles in
    if Array.length live > 0 then begin
      ignore (step_inst ~max_steps inst (Shm.Schedule.choose sched ~alive:live));
      go ()
    end
  in
  go ()

(* ---- child planning, shared with the parallel engine ---- *)

type children =
  | Terminal
  | Covered
  | Children of (int * (int * Shm.Footprint.t) list) list

(* [sleep] is the sleep set: processes whose pending action was
   already explored from an equivalent state in an earlier sibling
   branch, each with the footprint that action had when it went to
   sleep (the process has not moved since, so the action — and its
   footprint — are unchanged).  This is the single source of truth for
   which children a state has: {!Pexplore} must expand exactly the
   same tree as the recursion below or its differential guarantee is
   void. *)
let plan_children strategy ~sleep fps =
  if Array.length fps = 0 then Terminal
  else begin
    (* Persistent set: a pending Internal action touches no shared
       cell, so it commutes with every current and future action of
       every other process and stays enabled under them — exploring
       only it loses no trace class.  Otherwise all live processes. *)
    let persistent =
      match strategy with
      | Brute_force -> Array.to_list (Array.map fst fps)
      | Por -> (
          match
            Array.find_opt (fun (_, f) -> Shm.Footprint.is_local f) fps
          with
          | Some (p, _) -> [ p ]
          | None -> Array.to_list (Array.map fst fps))
    in
    let asleep p = List.exists (fun (q, _) -> q = p) sleep in
    let cands = List.filter (fun p -> not (asleep p)) persistent in
    match cands with
    | [] -> Covered (* all candidates asleep: subtree covered elsewhere *)
    | cands ->
        let fp_of p =
          let rec find i =
            if fst fps.(i) = p then snd fps.(i) else find (i + 1)
          in
          find 0
        in
        (* Plan every child before any in-place step mutates the node:
           child i sleeps on each earlier-explored sibling (and
           inherited sleeper) whose action is independent of child i's
           own action. *)
        let plans =
          let acc =
            ref (match strategy with Brute_force -> [] | Por -> sleep)
          in
          List.map
            (fun p ->
              let fp = fp_of p in
              let child_sleep =
                match strategy with
                | Brute_force -> []
                | Por ->
                    List.filter
                      (fun (_, f) -> Shm.Footprint.independent f fp)
                      !acc
              in
              acc := (p, fp) :: !acc;
              (p, child_sleep))
            cands
        in
        Children plans
  end

(* ---- the explorer ---- *)

(* Progress cadence for the sink / debug log: power of two so the
   modulo is a mask, rare enough not to perturb timing. *)
let progress_every = 4096

let explore ?(strategy = Por) ?(sink = Obs.Sink.null) ~factory ~branch_depth
    ~max_steps ~on_execution () =
  let observing = not (Obs.Sink.is_null sink) in
  let executions = ref 0 in
  let truncated = ref false in
  let emit inst =
    incr executions;
    if !executions mod progress_every = 0 then begin
      if observing then
        Obs.Sink.emit sink
          (Obs.Sink.record ~ts:!executions ~kind:Obs.Sink.Counter
             ~args:[ ("executions", Obs.Json.Int !executions) ]
             "explore.progress");
      Util.Logging.debug "explore: %d executions visited" !executions
    end;
    on_execution (execution_of inst)
  in
  let replay_rev rev_prefix =
    let inst = make_inst factory in
    List.iter
      (fun p -> ignore (step_inst ~max_steps inst p))
      (List.rev rev_prefix);
    inst
  in
  (* [branches] counts branching decisions on the path so far. *)
  let rec node inst sleep branches =
    let fps = Shm.Executor.live_footprints inst.handles in
    match plan_children strategy ~sleep fps with
    | Terminal -> emit inst
    | Covered -> ()
    | Children plans -> (
        match plans with
        | _ :: _ :: _ when branches >= branch_depth ->
            truncated := true;
            complete_round_robin ~max_steps inst;
            emit inst
        | plans -> (
            let branches =
              match plans with _ :: _ :: _ -> branches + 1 | _ -> branches
            in
            match plans with
            | [] -> assert false
            | (p0, sl0) :: deferred ->
                let base_rev = inst.rev_sched in
                (* first child: step in place, no replay *)
                ignore (step_inst ~max_steps inst p0);
                node inst sl0 branches;
                (* siblings: re-execute the prefix on fresh instances *)
                List.iter
                  (fun (p, sl) ->
                    node (replay_rev (p :: base_rev)) sl branches)
                  deferred))
  in
  node (make_inst factory) [] 0;
  let stats = { executions = !executions; fully_exhaustive = not !truncated } in
  if observing then
    Obs.Sink.emit sink
      (Obs.Sink.record ~ts:!executions ~kind:Obs.Sink.Counter
         ~args:
           [
             ("executions", Obs.Json.Int stats.executions);
             ("fully_exhaustive", Obs.Json.Bool stats.fully_exhaustive);
           ]
         "explore.done");
  Util.Logging.debug "explore: done, %d executions (exhaustive=%b)"
    stats.executions stats.fully_exhaustive;
  stats

let run ~factory ~branch_depth ~max_steps ~on_execution () =
  explore ~strategy:Brute_force ~factory ~branch_depth ~max_steps
    ~on_execution:(fun e -> on_execution e.dos)
    ()

(* ---- deterministic replay ---- *)

let replay ~factory ?(max_steps = 100_000) ?(complete = true) schedule =
  let inst = make_inst factory in
  List.iter
    (fun p ->
      if
        p >= 1
        && p <= Array.length inst.handles
        && inst.handles.(p - 1).Shm.Automaton.alive ()
      then ignore (step_inst ~max_steps inst p))
    schedule;
  if complete then complete_round_robin ~max_steps inst;
  execution_of inst

(* ---- canonical form modulo commutation ---- *)

let canonical_do_log dos =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (p, job) ->
      let prev = try Hashtbl.find tbl p with Not_found -> [] in
      Hashtbl.replace tbl p (job :: prev))
    dos;
  Hashtbl.fold (fun p jobs acc -> (p, List.rev jobs) :: acc) tbl []
  |> List.sort compare

(* ---- counterexample shrinking ---- *)

(* Generic greedy delta-debugging: delete contiguous chunks, halving
   the chunk size, until no single element is removable while
   [violates] keeps holding.  [items] must violate already. *)
let ddmin ~violates items =
  let cur = ref (Array.of_list items) in
  let progress = ref true in
  while !progress do
    progress := false;
    let chunk = ref (max 1 (Array.length !cur / 2)) in
    while !chunk >= 1 do
      let i = ref 0 in
      while !i < Array.length !cur do
        let a = !cur in
        let len = Array.length a in
        let hi = min len (!i + !chunk) in
        let candidate =
          Array.append (Array.sub a 0 !i) (Array.sub a hi (len - hi))
        in
        if violates (Array.to_list candidate) then begin
          cur := candidate;
          progress := true
          (* retry the same position: the next chunk slid in *)
        end
        else i := !i + !chunk
      done;
      chunk := (if !chunk = 1 then 0 else !chunk / 2)
    done
  done;
  Array.to_list !cur

let shrink ~factory ?(max_steps = 100_000) ?(complete = true) ~violates
    schedule =
  let attempt sched =
    let e = replay ~factory ~max_steps ~complete sched in
    if violates e then Some e else None
  in
  match attempt schedule with
  | None -> None
  | Some e0 ->
      (* [best] tracks the execution of the last accepted candidate,
         which is exactly the replay of the final minimal schedule *)
      let best = ref e0 in
      let minimal =
        ddmin
          ~violates:(fun sched ->
            match attempt sched with
            | Some e ->
                best := e;
                true
            | None -> false)
          e0.schedule
      in
      Some (minimal, !best)

(* ---- oracle-driven checking ---- *)

type finding = { execution : execution; violations : Oracle.violation list }

type report = {
  stats : stats;
  findings : finding list;
  violating : int;
  shrunk : (int list * Oracle.violation list) option;
}

let max_findings = 64

(* The oracle-judging half of [check], parameterized over the actual
   enumeration so the parallel engine ({!Pexplore.check}) reuses the
   exact same finding/dedup/shrink logic instead of drifting its own
   copy.  [run] must call [on_execution] once per complete
   execution. *)
let check_executions ?(minimize = true) ?(sink = Obs.Sink.null) ~factory
    ~max_steps ~oracles ~run () =
  let findings = ref [] in
  let n_findings = ref 0 in
  let violating = ref 0 in
  let seen = Hashtbl.create 64 in
  let stats =
    run
      ~on_execution:(fun (e : execution) ->
        match Oracle.check_all oracles e.trace with
        | [] -> ()
        | violations ->
            incr violating;
            if not (Obs.Sink.is_null sink) then
              Obs.Sink.emit sink
                (Obs.Sink.record ~ts:(List.length e.schedule)
                   ~kind:Obs.Sink.Instant
                   ~args:
                     [
                       ( "oracles",
                         Obs.Json.List
                           (List.map
                              (fun v -> Obs.Json.String v.Oracle.oracle)
                              violations) );
                     ]
                   "explore.violation");
            Util.Logging.debug "explore: violation #%d (%s)" !violating
              (String.concat ", "
                 (List.map (fun v -> v.Oracle.oracle) violations));
            let key = canonical_do_log e.dos in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.add seen key ();
              if !n_findings < max_findings then begin
                incr n_findings;
                findings := { execution = e; violations } :: !findings
              end
            end)
  in
  let findings = List.rev !findings in
  let shrunk =
    match findings with
    | first :: _ when minimize ->
        let names =
          List.map (fun v -> v.Oracle.oracle) first.violations
        in
        let violates (e : execution) =
          List.exists
            (fun v -> List.mem v.Oracle.oracle names)
            (Oracle.check_all oracles e.trace)
        in
        Option.map
          (fun ((sched, e) : int list * execution) ->
            (sched, Oracle.check_all oracles e.trace))
          (shrink ~factory ~max_steps ~complete:true ~violates
             first.execution.schedule)
    | _ -> None
  in
  { stats; findings; violating = !violating; shrunk }

let check ?(strategy = Por) ?minimize ?(sink = Obs.Sink.null) ~factory
    ~branch_depth ~max_steps ~oracles () =
  check_executions ?minimize ~sink ~factory ~max_steps ~oracles
    ~run:(fun ~on_execution ->
      explore ~strategy ~sink ~factory ~branch_depth ~max_steps ~on_execution
        ())
    ()
