type stats = { executions : int; fully_exhaustive : bool }

let run ~factory ~branch_depth ~max_steps ~on_execution () =
  let executions = ref 0 in
  let truncated = ref false in
  (* Re-execute [prefix] (reversed pid list) on a fresh instance. *)
  let replay prefix =
    let handles : Shm.Automaton.handle array = factory () in
    let trace = Shm.Trace.create `Outcomes in
    let step = ref 0 in
    let do_step p =
      let events = handles.(p - 1).Shm.Automaton.step () in
      List.iter (Shm.Trace.record trace ~step:!step) events;
      incr step
    in
    List.iter do_step (List.rev prefix);
    (trace, (fun () -> Shm.Executor.live_pids handles), do_step)
  in
  let rec go prefix depth =
    let trace, live_pids, do_step = replay prefix in
    let live = live_pids () in
    if Array.length live = 0 then begin
      incr executions;
      on_execution (Shm.Trace.do_events trace)
    end
    else if depth >= branch_depth then begin
      truncated := true;
      let sched = Shm.Schedule.round_robin () in
      let steps = ref depth in
      let rec finish () =
        let live = live_pids () in
        if Array.length live > 0 then begin
          if !steps > max_steps then
            failwith "Explore.run: max_steps exceeded (non-termination?)";
          incr steps;
          do_step (Shm.Schedule.choose sched ~alive:live);
          finish ()
        end
      in
      finish ();
      incr executions;
      on_execution (Shm.Trace.do_events trace)
    end
    else Array.iter (fun p -> go (p :: prefix) (depth + 1)) live
  in
  go [] 0;
  { executions = !executions; fully_exhaustive = not !truncated }
