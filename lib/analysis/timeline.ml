type fate = Terminated | Crashed | Unresolved

type row = {
  pid : int;
  first_step : int;
  last_step : int;
  dos : int;
  reads : int;
  writes : int;
  internals : int;
  fate : fate;
}

let blank pid =
  {
    pid;
    first_step = -1;
    last_step = -1;
    dos = 0;
    reads = 0;
    writes = 0;
    internals = 0;
    fate = Unresolved;
  }

let of_trace ~m trace =
  let rows = Array.init (m + 1) blank in
  let touch p step =
    let r = rows.(p) in
    rows.(p) <-
      {
        r with
        first_step = (if r.first_step < 0 then step else r.first_step);
        last_step = max r.last_step step;
      }
  in
  List.iter
    (fun { Shm.Trace.step; event } ->
      let p = Shm.Event.pid event in
      if p >= 1 && p <= m then begin
        touch p step;
        let r = rows.(p) in
        rows.(p) <-
          (match event with
          | Shm.Event.Do _ -> { r with dos = r.dos + 1 }
          | Shm.Event.Read _ -> { r with reads = r.reads + 1 }
          | Shm.Event.Write _ -> { r with writes = r.writes + 1 }
          | Shm.Event.Internal _ -> { r with internals = r.internals + 1 }
          | Shm.Event.Terminate _ -> { r with fate = Terminated }
          | Shm.Event.Crash _ -> { r with fate = Crashed }
          | Shm.Event.Restart _ -> { r with fate = Unresolved }
          | Shm.Event.Pick _ | Shm.Event.Announce _ | Shm.Event.Forfeit _
          | Shm.Event.Recover _ ->
              r)
      end)
    (Shm.Trace.entries trace);
  rows

let fate_to_string = function
  | Terminated -> "terminated"
  | Crashed -> "crashed"
  | Unresolved -> "unresolved"

let pp_row fmt r =
  Format.fprintf fmt
    "p%-3d steps [%d..%d]  do=%-5d r/w/i=%d/%d/%d  %s" r.pid r.first_step
    r.last_step r.dos r.reads r.writes r.internals (fate_to_string r.fate)

let pp fmt rows =
  Array.iteri
    (fun i r -> if i >= 1 then Format.fprintf fmt "%a@." pp_row r)
    rows
