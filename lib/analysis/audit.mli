(** Trace audits: structural well-formedness of an execution.

    The at-most-once property itself is checked by {!Core.Spec}; this
    module validates that a trace is a plausible execution of the
    model at all — the invariants every run of the executor must
    satisfy regardless of the algorithm:

    - steps are non-decreasing (the trace is linearized);
    - a process emits nothing after it crashed or terminated
      ([stopp] semantics, §2.1);
    - a process crashes at most once and terminates at most once,
      and never both;
    - every pid is within [1..m].

    The test suite audits the traces of every algorithm under every
    scheduler; a violation here indicates a bug in an automaton or
    the executor, not in the algorithm's logic. *)

type violation = {
  at_step : int;
  pid : int;
  what : string;
}

val check : m:int -> Shm.Trace.t -> (unit, violation) result

val assert_ok : m:int -> Shm.Trace.t -> unit
(** @raise Failure with a diagnostic on the first violation. *)

val pp_violation : Format.formatter -> violation -> unit
