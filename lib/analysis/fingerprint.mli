(** State fingerprints for exploration caching.

    A fingerprint condenses an exploration node — machine state after
    a schedule prefix, the canonical do-log of that prefix, the step
    count, and the node's sleep set — into one native int.  Two nodes
    with equal fingerprints have (up to hash collision) identical
    residual subtrees producing identical canonical do-log suffixes,
    so the second can be pruned without changing the {e set} of
    canonical do-logs or the violation verdicts the explorer reports
    (DESIGN.md §9 gives the full argument).  Per-execution counts may
    shrink under pruning, which is why {!Pexplore} only enables the
    cache when asked.

    Fingerprinting is only available when every live automaton
    implements {!Shm.Automaton.handle}[.fingerprint]; one opaque
    ([None]) live process makes {!state} return [None] and the caller
    falls back to uncached exploration. *)

val state :
  handles:Shm.Automaton.handle array ->
  stepno:int ->
  do_hash:int ->
  sleep:(int * Shm.Footprint.t) list ->
  int option
(** The fingerprint of an exploration node, or [None] if any live
    automaton is opaque. *)

val cover :
  handles:Shm.Automaton.handle array -> do_counts:int array -> faults:int -> int
(** The {e coverage} fingerprint used by {!Fuzz}-style novelty search:
    a behavioral abstraction — the per-process phase vector (dead
    processes marked), [do_counts] (per-pid performed-job counts, any
    indexing as long as it is pid-stable; invariant under commutation
    of independent actions, so Mazurkiewicz-equivalent prefixes
    collide), and the cumulative [faults] count (crashes + restarts).
    Job identities, register contents and step counts are excluded on
    purpose: coverage must {e saturate} for novelty to be a signal,
    and any per-run entropy source would let blind sampling mint
    endless "new" states.  Total (never opaque): phases are always
    available. *)

val do_hash_add : int -> pid:int -> index:int -> job:int -> int
(** Fold one [Do] event into a canonical do-prefix hash: commutative
    across pids, order-sensitive within a pid (via [index], the
    1-based position of this job in pid's own do sequence).  Two
    prefixes equivalent under commutation of independent actions hash
    equal. *)

(** {2 Incremental do-prefix accumulator} *)

type acc

val acc_create : m:int -> acc
(** [m] = highest pid. *)

val acc_feed : acc -> Shm.Event.t list -> unit
(** Fold the [Do] events of one step into the accumulator. *)

val acc_hash : acc -> int

(** {2 The shared seen-state table} *)

type table
(** A bounded open-addressing hash set of fingerprints, safe for
    concurrent use from multiple domains (lock-free CAS inserts).
    Collisions on the probe run beyond the probe limit overwrite
    (lossy — costs re-exploration, never soundness). *)

type stats = { hits : int; misses : int; evictions : int; capacity : int }

val default_bits : int
(** 20 — a 1M-slot table, 8 MB of atomics. *)

val create : ?bits:int -> unit -> table
(** [2^bits] slots, clamped to [4..28]. *)

val seen : table -> int -> bool
(** [seen t fp] — [true] if [fp] was already recorded (a cache hit:
    prune); otherwise records it and returns [false].  Updates the
    hit/miss/eviction counters. *)

val stats : table -> stats
