(* amo_run: command-line driver for every algorithm in the library.

   Examples:
     amo_run kk --jobs 1000 --procs 8
     amo_run kk --jobs 1000 --procs 8 --beta 192 --sched random --seed 7 --crashes 3
     amo_run kk --jobs 200 --procs 4 --trace-out kk.trace.json   # open in Perfetto
     amo_run kk --jobs 1000 --procs 8 --json                     # machine-readable
     amo_run worst --jobs 1000 --procs 8
     amo_run iterative --jobs 65536 --procs 8 --eps-inv 2
     amo_run wa --jobs 65536 --procs 8 --eps-inv 2
     amo_run trivial --jobs 1000 --procs 8 --crashes 2
     amo_run pairing --jobs 1000 --procs 8 --crashes 2
     amo_run multicore --jobs 20000 --procs 4
     amo_run chaos --soak 500 --jobs 20 --procs 4 --seed 3
     amo_run chaos --plan CHAOS_counterexample.json            # replay, exit 1
     amo_run explore --jobs 3 --procs 2 --domains 4 --fingerprint
     amo_run explore --jobs 4 --procs 2 --domains 2 --differential --json

   Exit status: 0 on success, 1 when a run violates its oracle
   (at-most-once, Write-All completeness, or a tight-bound prediction),
   2 on usage errors. *)

open Cmdliner
module J = Obs.Json

let version_string = "1.0.0"

let pp_summary ~label ~n ~m ~f:_ (s : Core.Harness.summary) =
  (* report the crashes that actually happened, not the requested budget *)
  let f = List.length s.crashed in
  let upper = Core.Params.effectiveness_upper_bound ~n ~f in
  (match Core.Spec.check_at_most_once s.dos with
  | Ok () -> Fmt.pr "at-most-once    : OK@."
  | Error v ->
      Fmt.pr "at-most-once    : VIOLATED (%a)@." Fmt.string
        (Format.asprintf "%a" Core.Spec.pp_violation v));
  Fmt.pr "algorithm       : %s@." label;
  Fmt.pr "jobs performed  : %d / %d (upper bound with f=%d crashes: %d)@."
    s.do_count n f upper;
  Fmt.pr "wait-free       : %b@." s.wait_free;
  Fmt.pr "steps           : %d@." s.steps;
  Fmt.pr "crashed procs   : [%s]@."
    (String.concat "; " (List.map string_of_int s.crashed));
  Fmt.pr "work (weighted) : %d@." (Shm.Metrics.total_work s.metrics);
  Fmt.pr "shared reads    : %d@." (Shm.Metrics.total_reads s.metrics);
  Fmt.pr "shared writes   : %d@." (Shm.Metrics.total_writes s.metrics);
  Fmt.pr "collisions      : %d@." (Core.Collision.total s.collision);
  ignore m

let exports ~m ~csv_dos ~csv_timeline ~show_timeline ~show_gantt
    (s : Core.Harness.summary) =
  let timeline () = Analysis.Timeline.of_trace ~m s.trace in
  (match csv_dos with
  | Some path ->
      let oc = open_out path in
      output_string oc (Analysis.Csv.of_do_events s.dos);
      close_out oc;
      Fmt.pr "do-log CSV      : %s@." path
  | None -> ());
  (match csv_timeline with
  | Some path ->
      let oc = open_out path in
      output_string oc (Analysis.Csv.of_timeline (timeline ()));
      close_out oc;
      Fmt.pr "timeline CSV    : %s@." path
  | None -> ());
  if show_timeline then
    Fmt.pr "timeline:@.%a" Analysis.Timeline.pp (timeline ());
  if show_gantt then
    Fmt.pr "gantt (D=do, X=crash, T=terminate):@.%s"
      (Analysis.Gantt.render ~m s.trace)

(* ---- observability helpers ---- *)

let apply_log_level = function
  | None -> ()
  | Some name -> (
      match Obs.Log.level_of_string name with
      | Some l -> Obs.Log.set_level l
      | None ->
          Fmt.epr "amo_run: unknown log level %S (use quiet|info|debug)@." name;
          exit 2)

(* a Chrome trace needs the full event stream; plain runs keep the
   cheap outcome-only trace *)
let trace_level_for trace_out : Shm.Trace.level =
  if trace_out = None then `Outcomes else `Full

let write_trace ~label ~m ~json trace_out (trace : Shm.Trace.t) =
  match trace_out with
  | None -> ()
  | Some path ->
      Obs.Chrome_trace.write_file ~run_name:label
        ~heatmap:(Obs.Heatmap.of_trace trace) ~m ~path trace;
      if not json then Fmt.pr "chrome trace    : %s@." path

let summary_json ~label ~n ~m extra (s : Core.Harness.summary) =
  let f = List.length s.crashed in
  let amo_ok = Result.is_ok (Core.Spec.check_at_most_once s.dos) in
  let metrics =
    match J.parse (Shm.Metrics.to_json s.metrics) with
    | Ok j -> j
    | Error _ -> J.Null
  in
  J.Obj
    ([
       ("algorithm", J.String label);
       ("n", J.Int n);
       ("m", J.Int m);
       ("amo_ok", J.Bool amo_ok);
       ("do_count", J.Int s.do_count);
       ("upper_bound", J.Int (Core.Params.effectiveness_upper_bound ~n ~f));
       ("wait_free", J.Bool s.wait_free);
       ("steps", J.Int s.steps);
       ("crashed", J.List (List.map (fun p -> J.Int p) s.crashed));
       ("work", J.Int (Shm.Metrics.total_work s.metrics));
       ("reads", J.Int (Shm.Metrics.total_reads s.metrics));
       ("writes", J.Int (Shm.Metrics.total_writes s.metrics));
       ("collisions", J.Int (Core.Collision.total s.collision));
       ("metrics", metrics);
     ]
    @ extra)

(* Print one summary (text or JSON), returning whether at-most-once
   held so the caller can set the exit status. *)
let report ~json ~label ~n ~m ?(extra_json = []) ?(extra_text = fun () -> ())
    (s : Core.Harness.summary) =
  if json then
    print_endline (J.to_string ~minify:false (summary_json ~label ~n ~m extra_json s))
  else begin
    pp_summary ~label ~n ~m ~f:0 s;
    extra_text ()
  end;
  Result.is_ok (Core.Spec.check_at_most_once s.dos)

(* ---- common options ---- *)

let jobs =
  let doc = "Number of jobs n." in
  Arg.(value & opt int 1000 & info [ "jobs"; "n" ] ~docv:"N" ~doc)

let procs =
  let doc = "Number of processes m." in
  Arg.(value & opt int 8 & info [ "procs"; "m" ] ~docv:"M" ~doc)

let beta =
  let doc = "Termination parameter beta (default: m, effectiveness-optimal)." in
  Arg.(value & opt (some int) None & info [ "beta" ] ~docv:"BETA" ~doc)

let seed =
  let doc = "PRNG seed for stochastic schedulers and crash times." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let sched =
  let doc = "Scheduler: rr, random, or bursty." in
  Arg.(
    value
    & opt (enum [ ("rr", `Rr); ("random", `Random); ("bursty", `Bursty) ]) `Rr
    & info [ "sched" ] ~docv:"SCHED" ~doc)

let crashes =
  let doc = "Number of random crash failures to inject (f < m)." in
  Arg.(value & opt int 0 & info [ "crashes"; "f" ] ~docv:"F" ~doc)

let eps_inv =
  let doc = "1/epsilon for the iterated algorithms (a positive integer)." in
  Arg.(value & opt int 2 & info [ "eps-inv" ] ~docv:"K" ~doc)

let csv_dos =
  let doc = "Export the linearized (pid, job) perform log as CSV to $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv-dos" ] ~docv:"FILE" ~doc)

let csv_timeline =
  let doc = "Export the per-process timeline as CSV to $(docv)." in
  Arg.(
    value & opt (some string) None & info [ "csv-timeline" ] ~docv:"FILE" ~doc)

let show_timeline =
  let doc = "Print the per-process timeline after the run." in
  Arg.(value & flag & info [ "timeline" ] ~doc)

let show_gantt =
  let doc = "Print an ASCII Gantt chart of the run." in
  Arg.(value & flag & info [ "gantt" ] ~doc)

let log_level =
  let doc =
    "Diagnostic verbosity for library logging: quiet, info or debug \
     (overrides the AMO_LOG environment variable)."
  in
  Arg.(value & opt (some string) None & info [ "log-level" ] ~docv:"LEVEL" ~doc)

let json_flag =
  let doc = "Emit the run summary as a single JSON object on stdout." in
  Arg.(value & flag & info [ "json" ] ~doc)

let trace_out =
  let doc =
    "Write the execution as Chrome trace_event JSON to $(docv) (open in \
     Perfetto or chrome://tracing).  Implies a full-detail trace."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let flight_out =
  let doc =
    "Arm an always-on binary flight recorder on the run: every executor \
     event is journaled into a bounded ring of fixed-size segments \
     (drop-oldest retention), and the retained tail plus a manifest is \
     dumped atomically into $(docv) — immediately on a violation, else at \
     run end.  Inspect with $(b,amo_run trace)."
  in
  Arg.(value & opt (some string) None & info [ "flight-out" ] ~docv:"DIR" ~doc)

(* One armed recorder per --flight-out run.  The dump is once-only —
   the first trigger (a violation) wins and later triggers are no-ops,
   so a soak's first failure is not overwritten by the end-of-run
   on-demand dump. *)
let make_flight = function
  | None -> None
  | Some dir -> Some (dir, Obs.Flight.create (), ref false)

let flight_probe = function
  | None -> None
  | Some (_, fl, _) -> Some (Obs.Journal.probe fl)

let flight_dump ~json ~trigger ?(extra = []) = function
  | None -> ()
  | Some (dir, fl, dumped) ->
      if not !dumped then begin
        dumped := true;
        let path = Obs.Journal.dump ~trigger ~extra ~dir fl in
        if not json then
          Fmt.pr "flight dump     : %s (%d records retained, trigger: %s)@."
            path
            (Obs.Flight.retained_records fl)
            trigger
      end

let make_sched kind rng =
  match kind with
  | `Rr -> Shm.Schedule.round_robin ()
  | `Random -> Shm.Schedule.random rng
  | `Bursty -> Shm.Schedule.bursty rng ~max_burst:64

let make_adversary rng ~f ~m ~n =
  if f = 0 then Shm.Adversary.none
  else Shm.Adversary.random rng ~f ~m ~horizon:(4 * n)

(* ---- subcommands ---- *)

(* One-shot Prometheus snapshot of a finished KK run: headline
   counters plus a per-process work-distribution histogram, written to
   <dir>/amo_kk.prom. *)
let kk_prom_snapshot ~dir ~n ~m ~beta ~do_count (s : Core.Harness.summary) =
  let reg = Obs.Prom.create () in
  let labels =
    [ ("n", string_of_int n); ("m", string_of_int m);
      ("beta", string_of_int beta) ]
  in
  let c name help v =
    Obs.Prom.counter reg ~name ~help ~labels (float_of_int v)
  in
  c "amo_kk_jobs_performed_total" "Distinct jobs performed" do_count;
  c "amo_kk_steps_total" "Executor steps" s.steps;
  c "amo_kk_work_total" "Weighted work (Theorem 5.6 accounting)"
    (Shm.Metrics.total_work s.metrics);
  c "amo_kk_reads_total" "Shared-register reads"
    (Shm.Metrics.total_reads s.metrics);
  c "amo_kk_writes_total" "Shared-register writes"
    (Shm.Metrics.total_writes s.metrics);
  c "amo_kk_collisions_total" "Collisions (Definition 5.2)"
    (Core.Collision.total s.collision);
  c "amo_kk_crashes_total" "Crashed processes" (List.length s.crashed);
  Obs.Prom.gauge reg ~name:"amo_kk_wait_free" ~labels
    ~help:"1 if the run reached quiescence"
    (if s.wait_free then 1. else 0.);
  let work = Obs.Sketch.create () in
  for p = 1 to m do
    Obs.Sketch.add work (Shm.Metrics.work s.metrics ~p)
  done;
  Obs.Prom.of_sketch reg ~name:"amo_kk_process_work" ~labels
    ~help:"Per-process weighted work (quantile sketch)" work;
  Obs.Prom.write_file reg (Filename.concat dir "amo_kk.prom")

let kk_cmd =
  let run n m beta_opt seed sched_kind f csv_dos csv_timeline show_timeline
      show_gantt log_level json trace_out prom_out flight_out =
    apply_log_level log_level;
    let beta = Option.value beta_opt ~default:m in
    let rng = Util.Prng.of_int seed in
    let label = Printf.sprintf "KK(beta=%d)" beta in
    let flight = make_flight flight_out in
    let s =
      Core.Harness.kk
        ~scheduler:(make_sched sched_kind rng)
        ~adversary:(make_adversary rng ~f ~m ~n)
        ~trace_level:(trace_level_for trace_out)
        ?probe:(flight_probe flight)
        ~verbose:(trace_out <> None) ~n ~m ~beta ()
    in
    let guaranteed =
      Core.Params.predicted_effectiveness (Core.Params.make ~n ~m ~beta)
    in
    let ok =
      report ~json ~label ~n ~m
        ~extra_json:[ ("guaranteed_effectiveness", J.Int guaranteed) ]
        ~extra_text:(fun () ->
          Fmt.pr "guaranteed eff. : %d  (Theorem 4.4: n - (beta + m - 2))@."
            guaranteed)
        s
    in
    (match prom_out with
    | Some dir ->
        kk_prom_snapshot ~dir ~n ~m ~beta ~do_count:s.do_count s;
        if not json then
          Fmt.pr "prometheus      : %s@." (Filename.concat dir "amo_kk.prom")
    | None -> ());
    write_trace ~label ~m ~json trace_out s.trace;
    exports ~m ~csv_dos ~csv_timeline ~show_timeline ~show_gantt s;
    flight_dump ~json
      ~trigger:(if ok then "on-demand" else "violation")
      ~extra:
        [
          ("cmd", J.String "kk");
          ("n", J.Int n);
          ("m", J.Int m);
          ("beta", J.Int beta);
          ("seed", J.Int seed);
        ]
      flight;
    if not ok then exit 1
  in
  let prom_out =
    let doc =
      "Write a Prometheus text-exposition snapshot of the run to \
       $(docv)/amo_kk.prom."
    in
    Arg.(value & opt (some string) None & info [ "prom-out" ] ~docv:"DIR" ~doc)
  in
  let doc = "Run algorithm KKbeta (the paper's core contribution)." in
  Cmd.v (Cmd.info "kk" ~doc)
    Term.(
      const run $ jobs $ procs $ beta $ seed $ sched $ crashes $ csv_dos
      $ csv_timeline $ show_timeline $ show_gantt $ log_level $ json_flag
      $ trace_out $ prom_out $ flight_out)

let claim_cmd =
  let run n m seed sched_kind f log_level json trace_out =
    apply_log_level log_level;
    let rng = Util.Prng.of_int seed in
    let metrics = Shm.Metrics.create ~m in
    let handles = Core.Claim_scan.processes ~metrics ~n ~m () in
    let outcome =
      Shm.Executor.run
        ~trace_level:(trace_level_for trace_out)
        ~scheduler:(make_sched sched_kind rng)
        ~adversary:(make_adversary rng ~f ~m ~n)
        handles
    in
    let dos = Shm.Trace.do_events outcome.Shm.Executor.trace in
    let amo_ok = Result.is_ok (Core.Spec.check_at_most_once dos) in
    let f_actual =
      List.length (Shm.Trace.crashes outcome.Shm.Executor.trace)
    in
    let optimal = Core.Claim_scan.predicted_effectiveness ~n ~f:f_actual in
    if json then
      print_endline
        (J.to_string ~minify:false
           (J.Obj
              [
                ("algorithm", J.String "claim-scan");
                ("n", J.Int n);
                ("m", J.Int m);
                ("amo_ok", J.Bool amo_ok);
                ("do_count", J.Int (Core.Spec.do_count dos));
                ("optimal", J.Int optimal);
                ("actions", J.Int (Shm.Metrics.total_actions metrics));
              ]))
    else begin
      (match Core.Spec.check_at_most_once dos with
      | Ok () -> Fmt.pr "at-most-once    : OK@."
      | Error v ->
          Fmt.pr "at-most-once    : VIOLATED (%s)@."
            (Format.asprintf "%a" Core.Spec.pp_violation v));
      Fmt.pr
        "algorithm       : claim-scan (test-and-set; outside the r/w model)@.";
      Fmt.pr "jobs performed  : %d / %d (optimal n-f: %d)@."
        (Core.Spec.do_count dos) n optimal;
      Fmt.pr "total actions   : %d@." (Shm.Metrics.total_actions metrics)
    end;
    write_trace ~label:"claim-scan" ~m ~json trace_out
      outcome.Shm.Executor.trace;
    if not amo_ok then exit 1
  in
  let doc =
    "Run the test-and-set claim scanner (the paper's RMW upper-bound witness)."
  in
  Cmd.v (Cmd.info "claim" ~doc)
    Term.(
      const run $ jobs $ procs $ seed $ sched $ crashes $ log_level $ json_flag
      $ trace_out)

let worst_cmd =
  let run n m beta_opt log_level json trace_out =
    apply_log_level log_level;
    let beta = Option.value beta_opt ~default:m in
    let label = Printf.sprintf "KK(beta=%d) vs worst-case adversary" beta in
    let s =
      Core.Harness.kk_worst_case
        ~trace_level:(trace_level_for trace_out)
        ~n ~m ~beta ()
    in
    let predicted =
      Core.Params.predicted_effectiveness (Core.Params.make ~n ~m ~beta)
    in
    let matched = s.do_count = predicted in
    let ok =
      report ~json ~label ~n ~m
        ~extra_json:
          [
            ("predicted_exact", J.Int predicted); ("matched", J.Bool matched);
          ]
        ~extra_text:(fun () ->
          Fmt.pr "prediction      : exactly %d jobs (tight by Theorem 4.4): %s@."
            predicted
            (if matched then "MATCHED" else "MISMATCH"))
        s
    in
    write_trace ~label ~m ~json trace_out s.trace;
    if not (ok && matched) then exit 1
  in
  let doc =
    "Run KKbeta against the constructive worst-case adversary of Theorem 4.4."
  in
  Cmd.v (Cmd.info "worst" ~doc)
    Term.(const run $ jobs $ procs $ beta $ log_level $ json_flag $ trace_out)

let iterative_cmd =
  let run n m eps_inv seed sched_kind f log_level json trace_out =
    apply_log_level log_level;
    let rng = Util.Prng.of_int seed in
    let label = Printf.sprintf "IterativeKK(eps=1/%d)" eps_inv in
    let s =
      Core.Harness.iterative
        ~scheduler:(make_sched sched_kind rng)
        ~adversary:(make_adversary rng ~f ~m ~n)
        ~trace_level:(trace_level_for trace_out)
        ~n ~m ~epsilon_inv:eps_inv ()
    in
    let loss_bound =
      Core.Iterative.predicted_loss_bound ~n ~m ~epsilon_inv:eps_inv
    in
    let ok =
      report ~json ~label ~n ~m
        ~extra_json:[ ("loss_bound", J.Int loss_bound) ]
        ~extra_text:(fun () ->
          Fmt.pr "loss bound      : <= %d jobs (Theorem 6.4)@." loss_bound)
        s
    in
    write_trace ~label ~m ~json trace_out s.trace;
    if not ok then exit 1
  in
  let doc = "Run IterativeKK(eps): work-optimal at-most-once." in
  Cmd.v (Cmd.info "iterative" ~doc)
    Term.(
      const run $ jobs $ procs $ eps_inv $ seed $ sched $ crashes $ log_level
      $ json_flag $ trace_out)

let wa_cmd =
  let run n m eps_inv seed sched_kind f log_level json trace_out =
    apply_log_level log_level;
    let rng = Util.Prng.of_int seed in
    let label = Printf.sprintf "WA_IterativeKK(eps=1/%d)" eps_inv in
    let s, complete =
      Core.Harness.writeall_iterative
        ~scheduler:(make_sched sched_kind rng)
        ~adversary:(make_adversary rng ~f ~m ~n)
        ~trace_level:(trace_level_for trace_out)
        ~n ~m ~epsilon_inv:eps_inv ()
    in
    if json then
      print_endline
        (J.to_string ~minify:false
           (J.Obj
              [
                ("algorithm", J.String label);
                ("n", J.Int n);
                ("m", J.Int m);
                ("write_all_complete", J.Bool complete);
                ("steps", J.Int s.steps);
                ("work", J.Int (Shm.Metrics.total_work s.metrics));
                ("writes", J.Int (Shm.Metrics.total_writes s.metrics));
              ]))
    else begin
      Fmt.pr "algorithm       : %s@." label;
      Fmt.pr "write-all done  : %b@." complete;
      Fmt.pr "steps           : %d@." s.steps;
      Fmt.pr "work (weighted) : %d@." (Shm.Metrics.total_work s.metrics);
      Fmt.pr "shared writes   : %d@." (Shm.Metrics.total_writes s.metrics)
    end;
    write_trace ~label ~m ~json trace_out s.trace;
    if not complete then exit 1
  in
  let doc = "Run WA_IterativeKK(eps): work-optimal Write-All." in
  Cmd.v (Cmd.info "wa" ~doc)
    Term.(
      const run $ jobs $ procs $ eps_inv $ seed $ sched $ crashes $ log_level
      $ json_flag $ trace_out)

let trivial_cmd =
  let run n m seed sched_kind f log_level json trace_out =
    apply_log_level log_level;
    let rng = Util.Prng.of_int seed in
    let s =
      Core.Harness.trivial
        ~scheduler:(make_sched sched_kind rng)
        ~adversary:(make_adversary rng ~f ~m ~n)
        ~trace_level:(trace_level_for trace_out)
        ~n ~m ()
    in
    let guaranteed = Core.Params.trivial_effectiveness ~n ~m ~f in
    let ok =
      report ~json ~label:"trivial split" ~n ~m
        ~extra_json:[ ("guaranteed_effectiveness", J.Int guaranteed) ]
        ~extra_text:(fun () ->
          Fmt.pr "guaranteed eff. : %d  ((m-f) * n/m)@." guaranteed)
        s
    in
    write_trace ~label:"trivial split" ~m ~json trace_out s.trace;
    if not ok then exit 1
  in
  let doc = "Run the trivial split baseline." in
  Cmd.v (Cmd.info "trivial" ~doc)
    Term.(
      const run $ jobs $ procs $ seed $ sched $ crashes $ log_level $ json_flag
      $ trace_out)

let pairing_cmd =
  let run n m seed sched_kind f log_level json trace_out =
    apply_log_level log_level;
    let rng = Util.Prng.of_int seed in
    let s =
      Core.Harness.pairing
        ~scheduler:(make_sched sched_kind rng)
        ~adversary:(make_adversary rng ~f ~m ~n)
        ~trace_level:(trace_level_for trace_out)
        ~n ~m ()
    in
    let ok = report ~json ~label:"two-process pairing" ~n ~m s in
    write_trace ~label:"two-process pairing" ~m ~json trace_out s.trace;
    if not ok then exit 1
  in
  let doc = "Run the two-process pairing baseline." in
  Cmd.v (Cmd.info "pairing" ~doc)
    Term.(
      const run $ jobs $ procs $ seed $ sched $ crashes $ log_level $ json_flag
      $ trace_out)

let msg_cmd =
  let run n m servers seed f log_level json =
    apply_log_level log_level;
    let rng = Util.Prng.of_int seed in
    let crash_plan =
      List.init (min f (m - 1)) (fun i ->
          ((i + 1) * 50 * n / m, `Client (i + 1)))
    in
    let o = Msg.Kk_mp.run_kk ~crash_plan ~servers ~n ~m ~beta:m ~rng () in
    let amo_ok = Result.is_ok (Core.Spec.check_at_most_once o.Msg.Kk_mp.dos) in
    if json then
      print_endline
        (J.to_string ~minify:false
           (J.Obj
              [
                ("algorithm", J.String "KK over ABD message passing");
                ("n", J.Int n);
                ("m", J.Int m);
                ("servers", J.Int servers);
                ("amo_ok", J.Bool amo_ok);
                ("do_count", J.Int (Core.Spec.do_count o.Msg.Kk_mp.dos));
                ("guarantee", J.Int (n - (m + m - 2)));
                ( "crashed_clients",
                  J.List
                    (List.map (fun p -> J.Int p) o.Msg.Kk_mp.crashed_clients) );
                ( "stuck",
                  J.List (List.map (fun p -> J.Int p) o.Msg.Kk_mp.stuck) );
                ("deliveries", J.Int o.Msg.Kk_mp.deliveries);
              ]))
    else begin
      (match Core.Spec.check_at_most_once o.Msg.Kk_mp.dos with
      | Ok () ->
          Fmt.pr "at-most-once    : OK (message passing, ABD registers)@."
      | Error v ->
          Fmt.pr "at-most-once    : VIOLATED (%s)@."
            (Format.asprintf "%a" Core.Spec.pp_violation v));
      Fmt.pr "jobs performed  : %d / %d (guarantee >= %d)@."
        (Core.Spec.do_count o.Msg.Kk_mp.dos)
        n
        (n - (m + m - 2));
      Fmt.pr "clients crashed : [%s]@."
        (String.concat "; "
           (List.map string_of_int o.Msg.Kk_mp.crashed_clients));
      Fmt.pr "stuck clients   : [%s]@."
        (String.concat "; " (List.map string_of_int o.Msg.Kk_mp.stuck));
      Fmt.pr "deliveries      : %d (%.1f per job)@." o.Msg.Kk_mp.deliveries
        (float_of_int o.Msg.Kk_mp.deliveries /. float_of_int n)
    end;
    if not amo_ok then exit 1
  in
  let servers =
    let doc = "Number of ABD replica servers." in
    Cmdliner.Arg.(value & opt int 3 & info [ "servers" ] ~docv:"S" ~doc)
  in
  let doc =
    "Run KKbeta over message passing (ABD-emulated atomic registers)."
  in
  Cmd.v (Cmd.info "msg" ~doc)
    Term.(
      const run $ jobs $ procs $ servers $ seed $ crashes $ log_level
      $ json_flag)

let explore_cmd =
  let run n m beta_opt branch_depth max_steps domains fingerprint differential
      log_level json =
    apply_log_level log_level;
    let beta = Option.value beta_opt ~default:m in
    let factory () =
      let metrics = Shm.Metrics.create ~m in
      let shared = Core.Kk.make_shared ~metrics ~m ~capacity:n ~name:"kk" () in
      Array.init m (fun i ->
          Core.Kk.handle
            (Core.Kk.create ~shared ~pid:(i + 1) ~beta
               ~policy:Core.Policy.Rank_split ~free:(Core.Job.universe ~n)
               ~mode:Core.Kk.Standalone ()))
    in
    let oracles =
      [
        Analysis.Oracle.at_most_once;
        Analysis.Oracle.kk_effectiveness ~n ~m ~beta;
        Analysis.Oracle.quiescence ~m;
      ]
    in
    let t0 = Unix.gettimeofday () in
    let report, pstats =
      Analysis.Pexplore.check ~domains ~fingerprint ~factory ~branch_depth
        ~max_steps ~oracles ()
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    let canonical_set explore_fn =
      let tbl = Hashtbl.create 1024 in
      ignore
        (explore_fn (fun (e : Analysis.Explore.execution) ->
             Hashtbl.replace tbl
               (Analysis.Explore.canonical_do_log e.Analysis.Explore.dos)
               ()));
      List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])
    in
    let diff_ok =
      if not differential then None
      else
        (* cross-validate against the sequential oracle: the canonical
           do-log sets must coincide exactly *)
        let seq =
          canonical_set (fun f ->
              Analysis.Explore.explore ~factory ~branch_depth ~max_steps
                ~on_execution:f ())
        in
        let par =
          canonical_set (fun f ->
              Analysis.Pexplore.explore ~domains ~fingerprint ~factory
                ~branch_depth ~max_steps ~on_execution:f ())
        in
        Some (seq = par)
    in
    let stats = report.Analysis.Explore.stats in
    if json then
      let cache_json =
        match pstats.Analysis.Pexplore.cache with
        | None -> J.Null
        | Some c ->
            J.Obj
              [
                ("hits", J.Int c.Analysis.Fingerprint.hits);
                ("misses", J.Int c.Analysis.Fingerprint.misses);
                ("evictions", J.Int c.Analysis.Fingerprint.evictions);
                ("capacity", J.Int c.Analysis.Fingerprint.capacity);
              ]
      in
      print_endline
        (J.to_string ~minify:false
           (J.Obj
              [
                ("n", J.Int n);
                ("m", J.Int m);
                ("beta", J.Int beta);
                ("domains", J.Int domains);
                ("fingerprint", J.Bool fingerprint);
                ("executions", J.Int stats.Analysis.Explore.executions);
                ( "fully_exhaustive",
                  J.Bool stats.Analysis.Explore.fully_exhaustive );
                ("work_items", J.Int pstats.Analysis.Pexplore.work_items);
                ("steals", J.Int pstats.Analysis.Pexplore.steals);
                ("cache", cache_json);
                ("violations", J.Int report.Analysis.Explore.violating);
                ( "differential_ok",
                  match diff_ok with Some b -> J.Bool b | None -> J.Null );
                ("seconds", J.Float elapsed);
              ]))
    else begin
      Fmt.pr "instance        : KK n=%d m=%d beta=%d@." n m beta;
      Fmt.pr "domains         : %d (%d work items, %d steals)@." domains
        pstats.Analysis.Pexplore.work_items pstats.Analysis.Pexplore.steals;
      Fmt.pr "executions      : %d%s@." stats.Analysis.Explore.executions
        (if stats.Analysis.Explore.fully_exhaustive then " (complete)"
         else " (budget-truncated)");
      (match pstats.Analysis.Pexplore.cache with
      | None -> Fmt.pr "fingerprints    : off@."
      | Some c ->
          let total = c.Analysis.Fingerprint.hits + c.Analysis.Fingerprint.misses in
          Fmt.pr "fingerprints    : %d hits / %d lookups (%.1f%%), %d evictions@."
            c.Analysis.Fingerprint.hits total
            (if total = 0 then 0.
             else
               100.
               *. float_of_int c.Analysis.Fingerprint.hits
               /. float_of_int total)
            c.Analysis.Fingerprint.evictions);
      (match diff_ok with
      | Some true -> Fmt.pr "differential    : OK (canonical sets identical)@."
      | Some false -> Fmt.pr "differential    : MISMATCH@."
      | None -> ());
      Fmt.pr "oracles         : %s@."
        (if report.Analysis.Explore.violating = 0 then "OK"
         else Printf.sprintf "%d VIOLATED" report.Analysis.Explore.violating);
      Fmt.pr "wall clock      : %.2fs@." elapsed
    end;
    (match report.Analysis.Explore.shrunk with
    | Some (sched, vs) when not json ->
        Fmt.pr "counterexample  : %d-step schedule [%s]@." (List.length sched)
          (String.concat "; " (List.map string_of_int sched));
        List.iter
          (fun v ->
            Fmt.pr "violation       : %s@."
              (Format.asprintf "%a" Analysis.Oracle.pp_violation v))
          vs
    | _ -> ());
    if diff_ok = Some false then exit 4;
    if report.Analysis.Explore.violating > 0 then exit 1
  in
  let explore_jobs =
    let doc = "Number of jobs n." in
    Arg.(value & opt int 3 & info [ "jobs"; "n" ] ~docv:"N" ~doc)
  in
  let explore_procs =
    let doc = "Number of processes m." in
    Arg.(value & opt int 2 & info [ "procs"; "m" ] ~docv:"M" ~doc)
  in
  let branch_depth_arg =
    let doc =
      "Branching-decision budget per path; beyond it executions complete \
       round-robin and coverage is reported as truncated."
    in
    Arg.(value & opt int 1_000_000 & info [ "branch-depth" ] ~docv:"D" ~doc)
  in
  let max_steps_arg =
    let doc = "Per-execution step budget (wait-freedom guard)." in
    Arg.(value & opt int 50_000 & info [ "max-steps" ] ~docv:"STEPS" ~doc)
  in
  let domains_arg =
    let doc = "Explorer domains (OCaml 5 parallelism); 1 = sequential." in
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"D" ~doc)
  in
  let fingerprint_flag =
    let doc =
      "Enable the state-fingerprint cache: prune subtrees whose (state, \
       step, do-prefix, sleep-set) hash was already explored.  Preserves \
       canonical do-log sets and oracle verdicts, not execution counts."
    in
    Arg.(value & flag & info [ "fingerprint" ] ~doc)
  in
  let differential_flag =
    let doc =
      "Also run the sequential explorer and verify both engines produce \
       identical canonical do-log sets (exit 4 on mismatch)."
    in
    Arg.(value & flag & info [ "differential" ] ~doc)
  in
  let doc =
    "Exhaustively model-check KKbeta with the domain-parallel POR explorer: \
     every interleaving (up to commutation) is enumerated and judged \
     against the at-most-once, effectiveness and quiescence oracles."
  in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(
      const run $ explore_jobs $ explore_procs $ beta $ branch_depth_arg
      $ max_steps_arg $ domains_arg $ fingerprint_flag $ differential_flag
      $ log_level $ json_flag)

(* Render one dashboard frame from the soak's aggregated telemetry. *)
let chaos_dashboard_frame ~n ~m ~beta ~count ~runs_done ~dos_total ~steps_total
    ~crashes_total ~restarts_total ~failures ~aborted ~fates ~steps_sketch
    ~elapsed =
  let open Obs.Dashboard in
  let throughput =
    if elapsed > 0. then float_of_int dos_total /. elapsed else 0.
  in
  let fate_row label v =
    kvf label "%d (%.1f%%)" v
      (if runs_done = 0 then 0.
       else 100. *. float_of_int v /. float_of_int (runs_done * n))
  in
  let status =
    if aborted then "ABORTED (fail-fast: at-most-once tripped)"
    else if failures > 0 then Printf.sprintf "%d FAILURES" failures
    else "OK"
  in
  render
    ~title:(Printf.sprintf "amo_run chaos  n=%d m=%d beta=%d" n m beta)
    ~status
    [
      section ~title:"progress"
        [
          gauge ~label:"plans"
            ~frac:(float_of_int runs_done /. float_of_int (max 1 count))
            (Printf.sprintf "%d / %d" runs_done count);
          kvf "throughput" "%.0f jobs/s (%d jobs, %.1fs)" throughput dos_total
            elapsed;
          kvf "steps" "%d total" steps_total;
        ];
      section ~title:"job fates (cumulative)"
        [
          fate_row "performed" fates.Obs.Ledger.performed;
          fate_row "forfeited" fates.Obs.Ledger.forfeited;
          fate_row "lost to crash" fates.Obs.Ledger.lost;
          fate_row "recovered" fates.Obs.Ledger.recovered;
          fate_row "doubly performed" fates.Obs.Ledger.violations;
        ];
      section ~title:"injected faults"
        [ kvf "crashes" "%d" crashes_total; kvf "restarts" "%d" restarts_total ];
      section ~title:"latency (steps per plan)"
        [ percentiles ~label:"sketch" steps_sketch ];
      section ~title:"monitor"
        [
          kv "at-most-once"
            (if fates.Obs.Ledger.violations > 0 then "VIOLATED" else "OK");
          kvf "oracle failures" "%d" failures;
        ];
    ]

(* Write the soak's current telemetry as a Prometheus text-exposition
   snapshot: <dir>/amo_chaos.prom, atomically replaced on each flush. *)
let chaos_prom_flush ~dir ~n ~m ~beta ~seed ~runs_done ~dos_total ~steps_total
    ~crashes_total ~restarts_total ~failures ~aborted ~fates ~steps_sketch () =
  let reg = Obs.Prom.create () in
  let labels = [ ("n", string_of_int n); ("m", string_of_int m);
                 ("beta", string_of_int beta); ("seed", string_of_int seed) ] in
  let c name help v =
    Obs.Prom.counter reg ~name ~help ~labels (float_of_int v)
  in
  c "amo_soak_runs_total" "Chaos plans executed" runs_done;
  c "amo_soak_jobs_performed_total" "Distinct jobs performed across plans"
    dos_total;
  c "amo_soak_steps_total" "Executor steps across plans" steps_total;
  c "amo_soak_crashes_total" "Injected crashes observed" crashes_total;
  c "amo_soak_restarts_total" "Injected restarts observed" restarts_total;
  c "amo_soak_oracle_failures_total" "Plans with at least one oracle violation"
    failures;
  Obs.Prom.gauge reg ~name:"amo_soak_aborted" ~labels
    ~help:"1 if a fail-fast monitor aborted the soak"
    (if aborted then 1. else 0.);
  List.iter
    (fun (fate, v) ->
      Obs.Prom.counter reg ~name:"amo_soak_job_fate_total"
        ~help:"Cumulative per-job fates (Obs.Ledger semantics)"
        ~labels:(labels @ [ ("fate", fate) ])
        (float_of_int v))
    [
      ("performed", fates.Obs.Ledger.performed);
      ("forfeited", fates.Obs.Ledger.forfeited);
      ("lost_crash", fates.Obs.Ledger.lost);
      ("recovered", fates.Obs.Ledger.recovered);
      ("doubly_performed", fates.Obs.Ledger.violations);
    ];
  Obs.Prom.of_sketch reg ~name:"amo_soak_plan_steps" ~labels
    ~help:"Executor steps per chaos plan (quantile sketch)" steps_sketch;
  Obs.Prom.write_file reg (Filename.concat dir "amo_chaos.prom")

let chaos_cmd =
  let run plan_file soak_count n m beta_opt seed out_dir max_steps dashboard
      prom_out fail_fast flight_out log_level json =
    apply_log_level log_level;
    let flight = make_flight flight_out in
    let flight_extra trigger_cmd =
      [ ("cmd", J.String trigger_cmd); ("seed", J.Int seed) ]
    in
    let pr_violations vs =
      List.iter
        (fun v ->
          if not json then
            Fmt.pr "violation       : %s@."
              (Format.asprintf "%a" Analysis.Oracle.pp_violation v))
        vs
    in
    match plan_file with
    | Some path -> (
        (* replay mode: execute one plan file, exit 1 on violation *)
        match Fault.Plan.load path with
        | Error e ->
            Fmt.epr "amo_run: %s: %s@." path e;
            exit 2
        | Ok plan when plan.Fault.Plan.net <> [] ->
            let r = Fault.Chaos.run_net_plan plan in
            if json then
              print_endline
                (J.to_string ~minify:false
                   (J.Obj
                      [
                        ("plan", Fault.Plan.to_json plan);
                        ("do_count", J.Int (List.length r.dos));
                        ( "stuck",
                          J.List (List.map (fun p -> J.Int p) r.stuck) );
                        ("deliveries", J.Int r.deliveries);
                        ( "violations",
                          J.List
                            (List.map
                               (fun v ->
                                 J.String v.Analysis.Oracle.oracle)
                               r.violations) );
                      ]))
            else begin
              Fmt.pr "plan            : %a@." Fault.Plan.pp plan;
              Fmt.pr "platform        : message passing (ABD registers)@.";
              Fmt.pr "jobs performed  : %d@." (List.length r.dos);
              Fmt.pr "stuck clients   : [%s]@."
                (String.concat "; " (List.map string_of_int r.stuck));
              Fmt.pr "deliveries      : %d@." r.deliveries;
              Fmt.pr "oracles         : %s@."
                (if r.violations = [] then "OK"
                 else Printf.sprintf "%d VIOLATED" (List.length r.violations))
            end;
            pr_violations r.violations;
            if r.violations <> [] then exit 1
        | Ok plan ->
            let r =
              (* budget exhaustion must not masquerade as a passing
                 replay: surface the wedged prefix and exit non-zero *)
              try
                Fault.Chaos.replay_plan
                  ?probe:(flight_probe flight)
                  ?max_steps plan
              with Analysis.Explore.Max_steps_exceeded { schedule; steps } ->
                if json then
                  print_endline
                    (J.to_string ~minify:false
                       (J.Obj
                          [
                            ("error", J.String "max-steps-exceeded");
                            ("plan", Fault.Plan.to_json plan);
                            ("steps", J.Int steps);
                            ( "schedule_prefix",
                              J.List (List.map (fun p -> J.Int p) schedule) );
                          ]))
                else begin
                  Fmt.epr
                    "amo_run: %s: step budget exhausted after %d steps \
                     (schedule prefix of %d picks recorded)@."
                    path steps (List.length schedule);
                  Fmt.epr
                    "amo_run: the plan does not quiesce under this budget — \
                     a would-be wait-freedom counterexample@."
                end;
                (* the journal holds the wedged run's tail — keep it *)
                flight_dump ~json ~trigger:"max-steps"
                  ~extra:(flight_extra "chaos-replay") flight;
                exit 3
            in
            (* the ledger's one-line causal explanation of the violated
               job — what the raw oracle verdict lacks *)
            let explanation =
              if r.violations = [] then None
              else
                Obs.Ledger.explain_violation
                  (Obs.Ledger.of_trace ~n:plan.Fault.Plan.n
                     ~m:plan.Fault.Plan.m r.trace)
            in
            if json then
              print_endline
                (J.to_string ~minify:false
                   (J.Obj
                      [
                        ("plan", Fault.Plan.to_json plan);
                        ("do_count", J.Int r.do_count);
                        ("steps", J.Int r.steps);
                        ("wait_free", J.Bool r.wait_free);
                        ( "crashes",
                          J.List (List.map (fun p -> J.Int p) r.crashes) );
                        ( "restarts",
                          J.List (List.map (fun p -> J.Int p) r.restarts) );
                        ( "violations",
                          J.List
                            (List.map
                               (fun v ->
                                 J.String v.Analysis.Oracle.oracle)
                               r.violations) );
                        ( "explanation",
                          match explanation with
                          | Some line -> J.String line
                          | None -> J.Null );
                      ]))
            else begin
              Fmt.pr "plan            : %a@." Fault.Plan.pp plan;
              Fmt.pr "platform        : shared memory@.";
              Fmt.pr "jobs performed  : %d / %d@." r.do_count
                plan.Fault.Plan.n;
              Fmt.pr "steps           : %d@." r.steps;
              Fmt.pr "crashed procs   : [%s]@."
                (String.concat "; " (List.map string_of_int r.crashes));
              Fmt.pr "restarted procs : [%s]@."
                (String.concat "; " (List.map string_of_int r.restarts));
              Fmt.pr "oracles         : %s@."
                (if r.violations = [] then "OK"
                 else Printf.sprintf "%d VIOLATED" (List.length r.violations))
            end;
            Option.iter
              (fun line ->
                if not json then Fmt.pr "explanation     : %s@." line)
              explanation;
            pr_violations r.violations;
            flight_dump ~json
              ~trigger:
                (if r.violations <> [] then "violation" else "on-demand")
              ~extra:(flight_extra "chaos-replay") flight;
            if r.violations <> [] then exit 1)
    | None ->
        (* soak mode: seeded random plans, shrink + save any failure;
           optional live dashboard and periodic Prometheus snapshots *)
        let beta = Option.value beta_opt ~default:m in
        let t_start = Unix.gettimeofday () in
        let runs_done = ref 0 in
        let dos_total = ref 0 in
        let steps_total = ref 0 in
        let crashes_total = ref 0 in
        let restarts_total = ref 0 in
        let failures_seen = ref 0 in
        let fates =
          ref
            {
              Obs.Ledger.performed = 0;
              forfeited = 0;
              lost = 0;
              recovered = 0;
              violations = 0;
            }
        in
        let steps_sketch = Obs.Sketch.create () in
        let last_dash = ref neg_infinity in
        let last_prom = ref neg_infinity in
        let telemetry ~aborted ~final () =
          let now = Unix.gettimeofday () in
          (* fixed refresh rate: at most 10 frames/s, plus one final
             frame; prometheus flushes at most once a second *)
          if dashboard && (final || now -. !last_dash >= 0.1) then begin
            last_dash := now;
            print_string
              (Obs.Dashboard.ansi_home
              ^ chaos_dashboard_frame ~n ~m ~beta ~count:soak_count
                  ~runs_done:!runs_done ~dos_total:!dos_total
                  ~steps_total:!steps_total ~crashes_total:!crashes_total
                  ~restarts_total:!restarts_total ~failures:!failures_seen
                  ~aborted ~fates:!fates ~steps_sketch
                  ~elapsed:(now -. t_start));
            flush stdout
          end;
          match prom_out with
          | Some dir when final || now -. !last_prom >= 1.0 ->
              last_prom := now;
              chaos_prom_flush ~dir ~n ~m ~beta ~seed ~runs_done:!runs_done
                ~dos_total:!dos_total ~steps_total:!steps_total
                ~crashes_total:!crashes_total ~restarts_total:!restarts_total
                ~failures:!failures_seen ~aborted ~fates:!fates ~steps_sketch
                ()
          | _ -> ()
        in
        let on_run _i (r : Fault.Chaos.run_result) =
          incr runs_done;
          dos_total := !dos_total + r.Fault.Chaos.do_count;
          steps_total := !steps_total + r.Fault.Chaos.steps;
          crashes_total := !crashes_total + List.length r.Fault.Chaos.crashes;
          restarts_total :=
            !restarts_total + List.length r.Fault.Chaos.restarts;
          if r.Fault.Chaos.violations <> [] then incr failures_seen;
          Obs.Sketch.add steps_sketch r.Fault.Chaos.steps;
          let c =
            Obs.Ledger.counts
              (Obs.Ledger.of_trace ~n:r.Fault.Chaos.plan.Fault.Plan.n
                 ~m:r.Fault.Chaos.plan.Fault.Plan.m r.Fault.Chaos.trace)
          in
          (fates :=
             {
               Obs.Ledger.performed = !fates.Obs.Ledger.performed + c.Obs.Ledger.performed;
               forfeited = !fates.Obs.Ledger.forfeited + c.Obs.Ledger.forfeited;
               lost = !fates.Obs.Ledger.lost + c.Obs.Ledger.lost;
               recovered = !fates.Obs.Ledger.recovered + c.Obs.Ledger.recovered;
               violations =
                 !fates.Obs.Ledger.violations + c.Obs.Ledger.violations;
             });
          telemetry ~aborted:false ~final:false ()
        in
        let s =
          Fault.Chaos.soak ~fail_fast ?probe:(flight_probe flight)
            ~on_failure:(fun _r ->
              flight_dump ~json ~trigger:"violation"
                ~extra:(flight_extra "chaos-soak") flight)
            ~on_run ~seed ~count:soak_count ~n ~m ~beta ()
        in
        telemetry ~aborted:s.Fault.Chaos.aborted ~final:true ();
        if dashboard then print_newline ();
        let saved =
          match s.first_failure with
          | None -> None
          | Some (mp, _) ->
              let path =
                Filename.concat out_dir ("CHAOS_" ^ mp.Fault.Plan.name ^ ".json")
              in
              Fault.Plan.save ~path mp;
              Some path
        in
        if json then
          print_endline
            (J.to_string ~minify:false
               (J.Obj
                  [
                    ("plans", J.Int s.runs);
                    ("recovery_plans", J.Int s.recovery_runs);
                    ("failures", J.Int s.failures);
                    ("restarts", J.Int s.total_restarts);
                    ("aborted", J.Bool s.aborted);
                    ( "counterexample",
                      match saved with Some p -> J.String p | None -> J.Null );
                  ]))
        else begin
          Fmt.pr "chaos soak      : %d plans (n=%d m=%d beta=%d seed=%d)@."
            s.runs n m beta seed;
          Fmt.pr "recovery plans  : %d (%d restarts)@." s.recovery_runs
            s.total_restarts;
          Fmt.pr "oracle failures : %d@." s.failures;
          if s.aborted then
            Fmt.pr
              "fail-fast       : soak ABORTED mid-run by the streaming \
               at-most-once monitor@.";
          match saved with
          | Some p -> Fmt.pr "counterexample  : %s (shrunk, replayable)@." p
          | None -> ()
        end;
        flight_dump ~json ~trigger:"on-demand"
          ~extra:(flight_extra "chaos-soak") flight;
        if s.failures > 0 then exit 1
  in
  let plan_file =
    let doc =
      "Replay a fault plan from $(docv) (as produced by the chaos shrinker) \
       instead of soaking; exit 1 if any oracle fires."
    in
    Arg.(value & opt (some string) None & info [ "plan" ] ~docv:"FILE" ~doc)
  in
  let soak_count =
    let doc = "Number of random plans to soak when no --plan is given." in
    Arg.(value & opt int 200 & info [ "soak" ] ~docv:"COUNT" ~doc)
  in
  let out_dir =
    let doc = "Directory for shrunk counterexample plans found while soaking." in
    Arg.(value & opt string "." & info [ "out-dir" ] ~docv:"DIR" ~doc)
  in
  let max_steps_opt =
    let doc =
      "Step budget for a --plan replay (default 200000 + 1000*n*m); \
       exhausting it exits 3 with the recorded schedule prefix."
    in
    Arg.(value & opt (some int) None & info [ "max-steps" ] ~docv:"STEPS" ~doc)
  in
  let dashboard_flag =
    let doc =
      "Live TTY dashboard while soaking: throughput, cumulative job-fate \
       ledger, injected-fault counts, steps-per-plan percentiles and monitor \
       status, repainted at a fixed refresh rate."
    in
    Arg.(value & flag & info [ "dashboard" ] ~doc)
  in
  let prom_out =
    let doc =
      "Flush Prometheus text-exposition snapshots of the soak's telemetry to \
       $(docv)/amo_chaos.prom periodically (atomic replace; textfile-collector \
       compatible)."
    in
    Arg.(value & opt (some string) None & info [ "prom-out" ] ~docv:"DIR" ~doc)
  in
  let fail_fast_flag =
    let doc =
      "Attach a streaming oracle monitor to every soak run and abort the \
       whole soak the moment an at-most-once violation happens (Lemma 4.1), \
       instead of discovering it at run end."
    in
    Arg.(value & flag & info [ "fail-fast" ] ~doc)
  in
  let doc =
    "Chaos-test KKbeta under composable fault plans (crashes, restarts, \
     stalls, partitions); replay or soak."
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const run $ plan_file $ soak_count $ jobs $ procs $ beta $ seed $ out_dir
      $ max_steps_opt $ dashboard_flag $ prom_out $ fail_fast_flag $ flight_out
      $ log_level $ json_flag)

let multicore_cmd =
  let run n m beta_opt log_level json =
    apply_log_level log_level;
    let beta = Option.value beta_opt ~default:m in
    let r = Multicore.Runner.run_kk ~n ~m ~beta () in
    let amo_ok = Result.is_ok (Core.Spec.check_at_most_once r.dos) in
    if json then
      print_endline
        (J.to_string ~minify:false
           (J.Obj
              [
                ("algorithm", J.String (Printf.sprintf "KK(beta=%d) on domains" beta));
                ("n", J.Int n);
                ("m", J.Int m);
                ("amo_ok", J.Bool amo_ok);
                ("do_count", J.Int (Core.Spec.do_count r.dos));
                ("wall_seconds", J.Float r.wall_seconds);
                ("work", J.Int (Shm.Metrics.total_work r.metrics));
                ( "per_process",
                  J.List
                    (List.init m (fun i -> J.Int r.per_process.(i + 1))) );
                ( "metrics",
                  match J.parse (Shm.Metrics.to_json r.metrics) with
                  | Ok j -> j
                  | Error _ -> J.Null );
              ]))
    else begin
      (match Core.Spec.check_at_most_once r.dos with
      | Ok () -> Fmt.pr "at-most-once    : OK (real domains)@."
      | Error v ->
          Fmt.pr "at-most-once    : VIOLATED (%s)@."
            (Format.asprintf "%a" Core.Spec.pp_violation v));
      Fmt.pr "jobs performed  : %d / %d@." (Core.Spec.do_count r.dos) n;
      Fmt.pr "wall time       : %.3fs@." r.wall_seconds;
      Fmt.pr "work (weighted) : %d@." (Shm.Metrics.total_work r.metrics);
      for p = 1 to m do
        Fmt.pr "  p%-2d performed : %d@." p r.per_process.(p)
      done
    end;
    if not amo_ok then exit 1
  in
  let doc = "Run KKbeta on real OCaml 5 domains with atomic registers." in
  Cmd.v (Cmd.info "multicore" ~doc)
    Term.(const run $ jobs $ procs $ beta $ log_level $ json_flag)

let report_cmd =
  let run n m beta_opt seed sched_kind f plan_file whys out ledger_out
      log_level =
    apply_log_level log_level;
    (* obtain a provenance-rich `Full trace plus the run's identity:
       either a fault-plan replay or a plain KK run from the knobs *)
    let run_name, nn, mm, bb, trace, plan_json, params, base_oracles =
      match plan_file with
      | Some path -> (
          match Fault.Plan.load path with
          | Error e ->
              Fmt.epr "amo_run: %s: %s@." path e;
              exit 2
          | Ok plan when plan.Fault.Plan.net <> [] ->
              Fmt.epr
                "amo_run report: message-passing plans have no shared-memory \
                 trace to report on@.";
              exit 2
          | Ok plan ->
              let r = Fault.Chaos.run_plan ~trace_level:`Full plan in
              ( plan.Fault.Plan.name,
                plan.Fault.Plan.n,
                plan.Fault.Plan.m,
                plan.Fault.Plan.beta,
                r.Fault.Chaos.trace,
                Some (Fault.Plan.to_json plan),
                [
                  ("plan", path);
                  ("n", string_of_int plan.Fault.Plan.n);
                  ("m", string_of_int plan.Fault.Plan.m);
                  ("beta", string_of_int plan.Fault.Plan.beta);
                  ("seed", string_of_int plan.Fault.Plan.seed);
                ],
                Fault.Chaos.oracles_for plan ))
      | None ->
          let beta = Option.value beta_opt ~default:m in
          let rng = Util.Prng.of_int seed in
          let s =
            Core.Harness.kk
              ~scheduler:(make_sched sched_kind rng)
              ~adversary:(make_adversary rng ~f ~m ~n)
              ~trace_level:`Full ~verbose:true ~provenance:true ~vclocks:true
              ~n ~m ~beta ()
          in
          let sched_name =
            match sched_kind with
            | `Rr -> "rr"
            | `Random -> "random"
            | `Bursty -> "bursty"
          in
          ( Printf.sprintf "KK(beta=%d)" beta,
            n,
            m,
            beta,
            s.Core.Harness.trace,
            None,
            [
              ("n", string_of_int n);
              ("m", string_of_int m);
              ("beta", string_of_int beta);
              ("sched", sched_name);
              ("crashes", string_of_int f);
              ("seed", string_of_int seed);
            ],
            Analysis.Oracle.at_most_once
            ::
            (if beta >= m then
               [
                 Analysis.Oracle.recovery_effectiveness ~n ~m ~beta;
                 Analysis.Oracle.quiescence ~m;
               ]
             else []) )
    in
    let ledger = Obs.Ledger.of_trace ~n:nn ~m:mm trace in
    let heatmap = Obs.Heatmap.of_trace trace in
    (* one verdict row per oracle, ledger agreement included;
       effectiveness/quiescence are gated on Lemma 4.3's termination
       condition (beta >= m), as in the chaos suite *)
    let oracles =
      base_oracles @ [ Analysis.Oracle.ledger_agreement ~n:nn ~m:mm ~beta:bb ]
    in
    let verdicts =
      List.map
        (fun (o : Analysis.Oracle.t) ->
          match o.Analysis.Oracle.check trace with
          | [] -> (o.Analysis.Oracle.name, true, "OK")
          | vs ->
              ( o.Analysis.Oracle.name,
                false,
                String.concat "; "
                  (List.map (fun v -> v.Analysis.Oracle.detail) vs) ))
        oracles
    in
    let why =
      List.map
        (fun job ->
          let chain = Obs.Span.causal_chain ~m:mm trace ~job in
          (job, Obs.Ledger.explain ledger job :: List.map Obs.Span.render chain))
        (List.sort_uniq compare whys)
    in
    (* --why also answers on stdout: the minimal causal chain *)
    List.iter
      (fun (job, lines) ->
        Fmt.pr "why job %d:@." job;
        List.iter (fun l -> Fmt.pr "  %s@." l) lines)
      why;
    let html =
      Obs.Report.make ~run_name ~params ~ledger ~heatmap ~verdicts ?plan_json
        ~why ~trace ()
    in
    Obs.Report.write_file ~path:out html;
    Fmt.pr "report          : %s@." out;
    (match ledger_out with
    | Some path ->
        let oc = open_out path in
        output_string oc (J.to_string ~minify:false (Obs.Ledger.to_json ledger));
        output_char oc '\n';
        close_out oc;
        Fmt.pr "ledger JSON     : %s@." path
    | None -> ());
    if List.exists (fun (_, ok, _) -> not ok) verdicts then exit 1
  in
  let plan_file =
    let doc =
      "Build the report from a fault-plan replay (shared-memory plans only) \
       instead of a plain KK run."
    in
    Arg.(value & opt (some string) None & info [ "plan" ] ~docv:"FILE" ~doc)
  in
  let whys =
    let doc =
      "Explain job $(docv): print its minimal causal chain and attach it to \
       the report (repeatable)."
    in
    Arg.(value & opt_all int [] & info [ "why" ] ~docv:"JOB" ~doc)
  in
  let out =
    let doc = "Output path for the self-contained HTML report." in
    Arg.(value & opt string "report.html" & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let ledger_out =
    let doc = "Also write the per-job ledger as JSON to $(docv)." in
    Arg.(
      value & opt (some string) None & info [ "ledger-out" ] ~docv:"FILE" ~doc)
  in
  let doc =
    "Run KKbeta (or replay a fault plan) and emit a self-contained HTML run \
     report: oracle verdicts, per-job provenance ledger, SVG timeline, \
     register-contention heatmap and causal why-chains."
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(
      const run $ jobs $ procs $ beta $ seed $ sched $ crashes $ plan_file
      $ whys $ out $ ledger_out $ log_level)

(* ---- fuzz ---- *)

(* Render one dashboard frame from the fuzzer's running stats. *)
let fuzz_dashboard_frame ~n ~m ~beta ~budget ~blind ~elapsed
    (st : Analysis.Fuzz.stats) =
  let open Obs.Dashboard in
  let execs_per_s =
    if elapsed > 0. then float_of_int st.Analysis.Fuzz.execs /. elapsed else 0.
  in
  let status =
    if st.Analysis.Fuzz.violations > 0 then
      Printf.sprintf "%d VIOLATIONS" st.Analysis.Fuzz.violations
    else "OK"
  in
  render
    ~title:
      (Printf.sprintf "amo_run fuzz  n=%d m=%d beta=%d%s" n m beta
         (if blind then "  [blind]" else ""))
    ~status
    [
      section ~title:"progress"
        [
          gauge ~label:"budget"
            ~frac:
              (float_of_int st.Analysis.Fuzz.execs
              /. float_of_int (max 1 budget))
            (Printf.sprintf "%d / %d" st.Analysis.Fuzz.execs budget);
          kvf "throughput" "%.0f execs/s (%.1fs)" execs_per_s elapsed;
        ];
      section ~title:"coverage"
        [
          kvf "distinct states" "%d (%d lookups)"
            st.Analysis.Fuzz.distinct_states st.Analysis.Fuzz.lookups;
          gauge ~label:"hit rate" ~frac:(Analysis.Fuzz.hit_rate st)
            (Printf.sprintf "%.1f%%" (100. *. Analysis.Fuzz.hit_rate st));
          spark ~label:"novelty"
            (downsample ~width:44
               (List.map snd st.Analysis.Fuzz.novelty));
        ];
      section ~title:"corpus"
        [
          kvf "size" "%d (%d kept this run)" st.Analysis.Fuzz.corpus
            st.Analysis.Fuzz.kept;
        ];
      section ~title:"oracles"
        [
          kv "verdict"
            (if st.Analysis.Fuzz.violations = 0 then "OK"
             else Printf.sprintf "%d violations" st.Analysis.Fuzz.violations);
          kv "first violation"
            (match st.Analysis.Fuzz.first_violation_exec with
            | Some e -> Printf.sprintf "exec %d" e
            | None -> "-");
        ];
    ]

(* Prometheus snapshot of the fuzzer's running stats:
   <dir>/amo_fuzz.prom, atomically replaced on each flush. *)
let fuzz_prom_flush ~dir ~n ~m ~beta ~seed (st : Analysis.Fuzz.stats) =
  let reg = Obs.Prom.create () in
  let labels =
    [ ("n", string_of_int n); ("m", string_of_int m);
      ("beta", string_of_int beta); ("seed", string_of_int seed) ]
  in
  let c name help v =
    Obs.Prom.counter reg ~name ~help ~labels (float_of_int v)
  in
  c "amo_fuzz_execs_total" "Plan executions performed" st.Analysis.Fuzz.execs;
  c "amo_fuzz_kept_total" "Inputs kept for reaching a novel state"
    st.Analysis.Fuzz.kept;
  c "amo_fuzz_distinct_states_total" "Novel coverage fingerprints recorded"
    st.Analysis.Fuzz.distinct_states;
  c "amo_fuzz_state_lookups_total" "Coverage fingerprint observations"
    st.Analysis.Fuzz.lookups;
  c "amo_fuzz_violations_total" "Executions with an oracle violation"
    st.Analysis.Fuzz.violations;
  Obs.Prom.gauge reg ~name:"amo_fuzz_corpus_size" ~labels
    ~help:"Current corpus size (seeds + keepers)"
    (float_of_int st.Analysis.Fuzz.corpus);
  Obs.Prom.gauge reg ~name:"amo_fuzz_coverage_hit_rate" ~labels
    ~help:"Fraction of state observations already covered"
    (Analysis.Fuzz.hit_rate st);
  Obs.Prom.write_file reg (Filename.concat dir "amo_fuzz.prom")

let fuzz_cmd =
  let run budget corpus_dir n m beta_opt seed algo_kind blind minimize out_dir
      max_steps max_seconds table_bits stop_on_violation dashboard prom_out
      flight_out log_level json =
    apply_log_level log_level;
    let beta = Option.value beta_opt ~default:m in
    let flight = make_flight flight_out in
    let flight_extra =
      [ ("cmd", J.String "fuzz"); ("seed", J.Int seed) ]
    in
    let algo =
      match algo_kind with
      | `Kk -> Fault.Plan.Kk
      | `Skip_check -> Fault.Plan.Kk_mutant_skip_check
      | `Skip_recovery_mark -> Fault.Plan.Kk_mutant_skip_recovery_mark
    in
    (* corpus: load every *.json plan in the dir as a seed; a file that
       does not parse or validate is a hard usage error (exit 2) — a
       corrupted corpus must not silently shrink the seed set *)
    let load_corpus dir =
      let entries =
        List.sort compare
          (List.filter
             (fun f -> Filename.check_suffix f ".json")
             (Array.to_list (Sys.readdir dir)))
      in
      List.map
        (fun f ->
          let path = Filename.concat dir f in
          match Fault.Plan.load path with
          | Error e ->
              Fmt.epr "amo_run: bad corpus entry %s: %s@." path e;
              exit 2
          | Ok plan -> (
              match Fault.Plan.validate plan with
              | Error e ->
                  Fmt.epr "amo_run: bad corpus entry %s: %s@." path e;
                  exit 2
              | Ok () -> plan))
        entries
    in
    let seeds =
      match corpus_dir with
      | Some dir when Sys.file_exists dir && Sys.is_directory dir -> (
          match load_corpus dir with
          | [] -> Fault.Fuzz.default_seeds ~algo ~seed ~n ~m ~beta ()
          | plans -> plans)
      | Some dir when Sys.file_exists dir ->
          Fmt.epr "amo_run: --corpus %s is not a directory@." dir;
          exit 2
      | Some dir ->
          Sys.mkdir dir 0o755;
          Fault.Fuzz.default_seeds ~algo ~seed ~n ~m ~beta ()
      | None -> Fault.Fuzz.default_seeds ~algo ~seed ~n ~m ~beta ()
    in
    (* persistence: every keeper is written back content-addressed, so
       reloading a corpus never duplicates entries *)
    let on_keep =
      match corpus_dir with
      | None -> None
      | Some dir ->
          Some
            (fun (plan : Fault.Plan.t) ->
              let body = Fault.Plan.to_string plan in
              let path =
                Filename.concat dir
                  (Printf.sprintf "fuzz-%08x.json" (Hashtbl.hash body))
              in
              if not (Sys.file_exists path) then begin
                let oc = open_out path in
                output_string oc body;
                output_char oc '\n';
                close_out oc
              end)
    in
    let t_start = Unix.gettimeofday () in
    let last_dash = ref neg_infinity in
    let last_prom = ref neg_infinity in
    let telemetry ~final (st : Analysis.Fuzz.stats) =
      let now = Unix.gettimeofday () in
      if dashboard && (final || now -. !last_dash >= 0.1) then begin
        last_dash := now;
        print_string
          (Obs.Dashboard.ansi_home
          ^ fuzz_dashboard_frame ~n ~m ~beta ~budget ~blind
              ~elapsed:(now -. t_start) st);
        flush stdout
      end;
      match prom_out with
      | Some dir when final || now -. !last_prom >= 1.0 ->
          last_prom := now;
          fuzz_prom_flush ~dir ~n ~m ~beta ~seed st
      | _ -> ()
    in
    let harness =
      let probe = flight_probe flight in
      if blind then Fault.Fuzz.blind_harness ?probe ?max_steps ()
      else Fault.Fuzz.harness ?probe ?max_steps ()
    in
    (* retain the journal the moment the first violating execution is
       seen — the recorder still holds that execution's tail *)
    let on_exec (st : Analysis.Fuzz.stats) =
      if st.Analysis.Fuzz.violations > 0 then
        flight_dump ~json ~trigger:"violation" ~extra:flight_extra flight;
      telemetry ~final:false st
    in
    let outcome =
      Analysis.Fuzz.run ?table_bits ~stop_on_violation ?max_seconds ?on_keep
        ~on_exec ~seed ~budget ~harness ~seeds ()
    in
    let st = outcome.Analysis.Fuzz.stats in
    telemetry ~final:true st;
    if dashboard then print_newline ();
    let elapsed = Unix.gettimeofday () -. t_start in
    (* one replayable FUZZ_*.json per distinct failure; --minimize
       ddmin-shrinks each through the chaos shrinker first *)
    let distinct_failures =
      let tbl = Hashtbl.create 8 in
      List.filter
        (fun p ->
          let key = Fault.Plan.to_string p in
          if Hashtbl.mem tbl key then false
          else begin
            Hashtbl.add tbl key ();
            true
          end)
        outcome.Analysis.Fuzz.failures
    in
    let saved =
      List.mapi
        (fun i (p : Fault.Plan.t) ->
          let p =
            if not minimize then p
            else
              match Fault.Fuzz.minimize p with
              | Some (minimal, _) -> minimal
              | None -> p
          in
          let path =
            Filename.concat out_dir
              (Printf.sprintf "FUZZ_%02d_%s.json" i p.Fault.Plan.name)
          in
          Fault.Plan.save ~path p;
          path)
        distinct_failures
    in
    if json then
      print_endline
        (J.to_string ~minify:false
           (J.Obj
              [
                ("budget", J.Int budget);
                ("execs", J.Int st.Analysis.Fuzz.execs);
                ("execs_per_sec",
                 J.Float
                   (if elapsed > 0. then
                      float_of_int st.Analysis.Fuzz.execs /. elapsed
                    else 0.));
                ("seeds", J.Int (List.length seeds));
                ("kept", J.Int st.Analysis.Fuzz.kept);
                ("corpus", J.Int st.Analysis.Fuzz.corpus);
                ("distinct_states", J.Int st.Analysis.Fuzz.distinct_states);
                ("lookups", J.Int st.Analysis.Fuzz.lookups);
                ("hit_rate", J.Float (Analysis.Fuzz.hit_rate st));
                ("violations", J.Int st.Analysis.Fuzz.violations);
                ( "first_violation_exec",
                  match st.Analysis.Fuzz.first_violation_exec with
                  | Some e -> J.Int e
                  | None -> J.Null );
                ("blind", J.Bool blind);
                ( "counterexamples",
                  J.List (List.map (fun p -> J.String p) saved) );
              ]))
    else begin
      Fmt.pr "fuzz            : %d execs in %.1fs (%.0f/s)%s@."
        st.Analysis.Fuzz.execs elapsed
        (if elapsed > 0. then float_of_int st.Analysis.Fuzz.execs /. elapsed
         else 0.)
        (if blind then "  [blind]" else "");
      Fmt.pr "instance        : n=%d m=%d beta=%d algo=%s seed=%d@." n m beta
        (Fault.Plan.algo_to_string algo)
        seed;
      Fmt.pr "corpus          : %d plans (%d seeds, %d kept)@."
        st.Analysis.Fuzz.corpus (List.length seeds) st.Analysis.Fuzz.kept;
      Fmt.pr "coverage        : %d distinct states, %d lookups (%.1f%% hit)@."
        st.Analysis.Fuzz.distinct_states st.Analysis.Fuzz.lookups
        (100. *. Analysis.Fuzz.hit_rate st);
      (match st.Analysis.Fuzz.first_violation_exec with
      | Some e ->
          Fmt.pr "violations      : %d (first at exec %d)@."
            st.Analysis.Fuzz.violations e
      | None -> Fmt.pr "violations      : 0@.");
      List.iter
        (fun p -> Fmt.pr "counterexample  : %s (replay: amo_run chaos --plan)@." p)
        saved
    end;
    flight_dump ~json
      ~trigger:
        (if st.Analysis.Fuzz.violations > 0 then "violation" else "on-demand")
      ~extra:flight_extra flight;
    if st.Analysis.Fuzz.violations > 0 then exit 1
  in
  let budget =
    let doc = "Total execution budget (seed runs included)." in
    Arg.(value & opt int 1000 & info [ "budget" ] ~docv:"EXECS" ~doc)
  in
  let corpus_dir =
    let doc =
      "Persistent corpus directory: existing *.json plans seed the run \
       (a file that fails to parse or validate exits 2); every kept input \
       is written back content-addressed.  Created if missing."
    in
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR" ~doc)
  in
  let algo_arg =
    let doc =
      "Algorithm under test: kk, skip-check or skip-recovery-mark (the \
       seeded mutants)."
    in
    Arg.(
      value
      & opt
          (enum
             [
               ("kk", `Kk);
               ("skip-check", `Skip_check);
               ("skip-recovery-mark", `Skip_recovery_mark);
             ])
          `Kk
      & info [ "algo" ] ~docv:"ALGO" ~doc)
  in
  let blind_flag =
    let doc =
      "Disable coverage guidance: draw every input fresh instead of \
       mutating the corpus (the Monte-Carlo control of bench E17)."
    in
    Arg.(value & flag & info [ "blind" ] ~doc)
  in
  let minimize_flag =
    let doc =
      "ddmin-shrink each counterexample (pin the recorded schedule, \
       delta-minimize faults and picks) before saving it."
    in
    Arg.(value & flag & info [ "minimize" ] ~doc)
  in
  let out_dir =
    let doc = "Directory for FUZZ_*.json counterexample plans." in
    Arg.(value & opt string "." & info [ "out-dir" ] ~docv:"DIR" ~doc)
  in
  let max_steps_opt =
    let doc = "Per-execution step budget (default 200000 + 1000*n*m)." in
    Arg.(value & opt (some int) None & info [ "max-steps" ] ~docv:"STEPS" ~doc)
  in
  let max_seconds_opt =
    let doc =
      "Wall-clock time box: stop drawing new inputs after $(docv) seconds \
       (the nightly-CI knob; the budget still caps total work)."
    in
    Arg.(
      value & opt (some float) None & info [ "max-seconds" ] ~docv:"SECS" ~doc)
  in
  let table_bits_opt =
    let doc =
      "log2 of the novelty table size (default 20, a 1M-slot table).  \
       Affects search order only, never verdicts."
    in
    Arg.(value & opt (some int) None & info [ "table-bits" ] ~docv:"BITS" ~doc)
  in
  let stop_on_violation_flag =
    let doc = "Stop at the first oracle violation instead of spending the \
               whole budget." in
    Arg.(value & flag & info [ "stop-on-violation" ] ~doc)
  in
  let dashboard_flag =
    let doc =
      "Live TTY dashboard: budget progress, execs/sec, coverage hit rate, \
       the novelty curve as a sparkline, corpus size and oracle status."
    in
    Arg.(value & flag & info [ "dashboard" ] ~doc)
  in
  let prom_out =
    let doc =
      "Flush Prometheus text-exposition snapshots of the fuzzing stats to \
       $(docv)/amo_fuzz.prom periodically (atomic replace)."
    in
    Arg.(value & opt (some string) None & info [ "prom-out" ] ~docv:"DIR" ~doc)
  in
  let doc =
    "Coverage-guided fuzzing over schedules and fault plans: mutate a \
     persistent corpus, keep inputs that reach novel behavioral states \
     (Mazurkiewicz-equivalent rediscoveries are discarded), ddmin-shrink \
     any oracle violation into a replayable FUZZ_*.json plan."
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const run $ budget $ corpus_dir $ jobs $ procs $ beta $ seed $ algo_arg
      $ blind_flag $ minimize_flag $ out_dir $ max_steps_opt $ max_seconds_opt
      $ table_bits_opt $ stop_on_violation_flag $ dashboard_flag $ prom_out
      $ flight_out $ log_level $ json_flag)

let profile_cmd =
  let run n m beta_opt seed sched_kind f mc rtevents_flag log_level json
      trace_out prom_out report_out =
    apply_log_level log_level;
    let beta = Option.value beta_opt ~default:m in
    let prom_write ~fill dir =
      let reg = Obs.Prom.create () in
      fill reg;
      let path = Filename.concat dir "amo_profile.prom" in
      Obs.Prom.write_file reg path;
      if not json then Fmt.pr "prometheus      : %s@." path
    in
    if mc then begin
      (* real domains: there is no executor probe seam, so profiling
         is runtime-events only — mc.run/mc.domain spans, GC phases
         and counters straight from the runtime *)
      (match report_out with
      | Some _ ->
          Fmt.epr
            "amo_run profile: --report-out needs the simulator (drop --mc)@.";
          exit 2
      | None -> ());
      let re = Obs.Rtevents.start () in
      let outcome = Multicore.Runner.run_kk ~n ~m ~beta ~rtevents:re () in
      let summary = Obs.Rtevents.stop re in
      let do_count = List.length outcome.Multicore.Runner.dos in
      if json then
        print_endline
          (J.to_string ~minify:false
             (J.Obj
                [
                  ("algorithm", J.String "mc-profile");
                  ("n", J.Int n);
                  ("m", J.Int m);
                  ("beta", J.Int beta);
                  ("do_count", J.Int do_count);
                  ( "wall_seconds",
                    J.Float outcome.Multicore.Runner.wall_seconds );
                  ("rtevents", Obs.Rtevents.summary_json summary);
                ]))
      else begin
        Fmt.pr "algorithm       : KK(beta=%d) on %d domains@." beta m;
        Fmt.pr "jobs performed  : %d / %d@." do_count n;
        Fmt.pr "wall seconds    : %.4f@." outcome.Multicore.Runner.wall_seconds;
        Fmt.pr "runtime events  : %d (%d lost), total GC %d us@."
          summary.Obs.Rtevents.events summary.Obs.Rtevents.lost
          (Obs.Rtevents.total_gc_us summary);
        List.iter
          (fun (name, count, dur_us) ->
            Fmt.pr "  %-24s %6d spans %10d us@." name count dur_us)
          (Obs.Rtevents.by_phase summary)
      end;
      (match trace_out with
      | Some path ->
          (* runtime tracks only: there is no logical-step trace here *)
          let doc =
            J.Obj
              [
                ( "traceEvents",
                  J.List (Obs.Rtevents.trace_events summary) );
                ("displayTimeUnit", J.String "ms");
              ]
          in
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc (J.to_string ~minify:false doc));
          if not json then Fmt.pr "chrome trace    : %s@." path
      | None -> ());
      (match prom_out with
      | Some dir -> prom_write dir ~fill:(fun reg -> Obs.Rtevents.prom summary reg)
      | None -> ())
    end
    else begin
      (* simulator: a Gcstat probe rides the executor's event stream,
         attributing allocation to (pid, phase); --rtevents adds the
         runtime's own view on top.  The run is traced at `Full with
         verbose memory events so attribution has per-access
         granularity — profile numbers include tracing cost, which is
         the honest figure for an instrumented run. *)
      let rng = Util.Prng.of_int seed in
      let gc = Obs.Gcstat.create () in
      let re = if rtevents_flag then Some (Obs.Rtevents.start ()) else None in
      let body () =
        Core.Harness.kk
          ~scheduler:(make_sched sched_kind rng)
          ~adversary:(make_adversary rng ~f ~m ~n)
          ~trace_level:`Full ~verbose:true
          ~provenance:(report_out <> None)
          ~probe:(Obs.Gcstat.probe gc) ~n ~m ~beta ()
      in
      let s =
        match re with
        | Some _ -> Obs.Rtevents.with_span "kk.run" body
        | None -> body ()
      in
      let rsummary = Option.map Obs.Rtevents.stop re in
      if json then
        print_endline
          (J.to_string ~minify:false
             (J.Obj
                ([
                   ("algorithm", J.String "kk-profile");
                   ("n", J.Int n);
                   ("m", J.Int m);
                   ("beta", J.Int beta);
                   ("do_count", J.Int s.Core.Harness.do_count);
                   ("steps", J.Int s.Core.Harness.steps);
                   ("gcstat", Obs.Gcstat.to_json gc);
                 ]
                @
                match rsummary with
                | Some summary ->
                    [ ("rtevents", Obs.Rtevents.summary_json summary) ]
                | None -> [])))
      else begin
        Fmt.pr "algorithm       : KK(beta=%d), simulator@." beta;
        Fmt.pr "jobs performed  : %d / %d@." s.Core.Harness.do_count n;
        Fmt.pr "executor steps  : %d@." s.Core.Harness.steps;
        Fmt.pr "%a@." Obs.Gcstat.pp gc;
        match rsummary with
        | Some summary ->
            Fmt.pr "runtime events  : %d (%d lost), total GC %d us@."
              summary.Obs.Rtevents.events summary.Obs.Rtevents.lost
              (Obs.Rtevents.total_gc_us summary);
            List.iter
              (fun (name, count, dur_us) ->
                Fmt.pr "  %-24s %6d spans %10d us@." name count dur_us)
              (Obs.Rtevents.by_phase summary)
        | None -> ()
      end;
      (match trace_out with
      | Some path ->
          let extra =
            match rsummary with
            | Some summary -> Obs.Rtevents.trace_events summary
            | None -> []
          in
          Obs.Chrome_trace.write_file
            ~run_name:(Printf.sprintf "KK(beta=%d) profile" beta)
            ~heatmap:(Obs.Heatmap.of_trace s.Core.Harness.trace)
            ~extra ~m ~path s.Core.Harness.trace;
          if not json then Fmt.pr "chrome trace    : %s@." path
      | None -> ());
      (match prom_out with
      | Some dir ->
          prom_write dir ~fill:(fun reg ->
              Obs.Gcstat.prom gc reg;
              match rsummary with
              | Some summary -> Obs.Rtevents.prom summary reg
              | None -> ())
      | None -> ());
      match report_out with
      | Some path ->
          let trace = s.Core.Harness.trace in
          let ledger = Obs.Ledger.of_trace ~n ~m trace in
          let html =
            Obs.Report.make
              ~run_name:(Printf.sprintf "KK(beta=%d) profile" beta)
              ~params:
                [
                  ("n", string_of_int n);
                  ("m", string_of_int m);
                  ("beta", string_of_int beta);
                  ("seed", string_of_int seed);
                  ("crashes", string_of_int f);
                ]
              ~ledger
              ~heatmap:(Obs.Heatmap.of_trace trace)
              ~gcstat:gc ~trace ()
          in
          Obs.Report.write_file ~path html;
          if not json then Fmt.pr "html report     : %s@." path
      | None -> ()
    end
  in
  let mc_flag =
    let doc =
      "Profile the multicore runner (real domains) instead of the simulator: \
       runtime-events only, no per-phase allocation attribution."
    in
    Arg.(value & flag & info [ "mc" ] ~doc)
  in
  let rtevents_flag =
    let doc =
      "Also attach a Runtime_events consumer: GC phases, lifecycle and \
       counters from the runtime itself, merged into --trace-out as \
       dedicated tracks."
    in
    Arg.(value & flag & info [ "rtevents" ] ~doc)
  in
  let prom_out =
    let doc =
      "Write a Prometheus snapshot of the profile (GC attribution + runtime \
       events) to $(docv)/amo_profile.prom."
    in
    Arg.(value & opt (some string) None & info [ "prom-out" ] ~docv:"DIR" ~doc)
  in
  let report_out =
    let doc =
      "Write the self-contained HTML run report, GC-attribution section \
       included, to $(docv)."
    in
    Arg.(
      value & opt (some string) None & info [ "report-out" ] ~docv:"FILE" ~doc)
  in
  let doc =
    "Profile a run: per-phase GC attribution via the executor probe seam, \
     and optionally the runtime's own event stream (GC phases, domain \
     lifecycle) via OCaml 5 Runtime_events."
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const run $ jobs $ procs $ beta $ seed $ sched $ crashes $ mc_flag
      $ rtevents_flag $ log_level $ json_flag $ trace_out $ prom_out
      $ report_out)

(* ------------------------------------------------------------------ *)
(* trace: the offline flight-journal engine (decode / query / merge).
   Exit contract: 0 clean, 1 only when --fail-empty matched nothing,
   2 on unreadable/corrupt input (recovered records are still
   printed — a truncated journal yields everything before the
   damage, plus the byte offset where decoding stopped). *)

let trace_cmd =
  (* a dump directory, its manifest.json, or a single segment file *)
  let load path =
    match Obs.Journal.load_dump path with
    | Error e ->
        Fmt.epr "amo_run: %s: %s@." path e;
        exit 2
    | Ok (items, damages) ->
        List.iter
          (fun (file, (d : Obs.Journal.damage)) ->
            Fmt.epr
              "amo_run: %s: damaged at byte %d: %s (recovered all prior \
               records)@."
              file d.Obs.Journal.offset d.Obs.Journal.reason)
          damages;
        (items, damages <> [])
  in
  let infer_m items =
    List.fold_left
      (fun acc it -> max acc (Obs.Journal.record_of_item it).Obs.Sink.pid)
      1 items
  in
  let jsonl_of_record r =
    J.to_string ~minify:true (Obs.Sink.record_to_json r)
  in
  (* non-executor records (counters, net.send/net.recv, bench marks)
     ride into the Chrome document through the ?extra seam *)
  let chrome_of_record (r : Obs.Sink.record) =
    let base =
      [
        ("name", J.String r.Obs.Sink.name);
        ("pid", J.Int r.Obs.Sink.pid);
        ("tid", J.Int r.Obs.Sink.pid);
        ("ts", J.Int r.Obs.Sink.ts);
      ]
    in
    let args =
      match r.Obs.Sink.args with [] -> [] | a -> [ ("args", J.Obj a) ]
    in
    match r.Obs.Sink.kind with
    | Obs.Sink.Span ->
        J.Obj
          (base @ [ ("ph", J.String "X"); ("dur", J.Int r.Obs.Sink.dur) ] @ args)
    | Obs.Sink.Counter -> J.Obj (base @ [ ("ph", J.String "C") ] @ args)
    | Obs.Sink.Instant | Obs.Sink.Log ->
        J.Obj (base @ [ ("ph", J.String "i"); ("s", J.String "t") ] @ args)
  in
  let in_arg =
    let doc =
      "Journal to read: a flight-dump directory (or its manifest.json), or a \
       single segment-*.amoj file."
    in
    Arg.(required & opt (some string) None & info [ "in" ] ~docv:"PATH" ~doc)
  in
  let decode_cmd =
    let run in_path jsonl_out chrome_out log_level =
      apply_log_level log_level;
      let items, damaged = load in_path in
      let emit_jsonl oc =
        List.iter
          (fun it ->
            output_string oc (jsonl_of_record (Obs.Journal.record_of_item it));
            output_char oc '\n')
          items
      in
      (match jsonl_out with
      | Some path ->
          let oc = open_out path in
          emit_jsonl oc;
          close_out oc
      | None -> if chrome_out = None then emit_jsonl stdout);
      (match chrome_out with
      | None -> ()
      | Some path ->
          let trace = Obs.Journal.to_trace items in
          let m = infer_m items in
          let extra =
            List.filter_map
              (function
                | Obs.Journal.Record r
                  when Obs.Journal.event_of_record r = None ->
                    Some (chrome_of_record r)
                | _ -> None)
              items
          in
          let doc =
            Obs.Chrome_trace.to_string ~run_name:(Filename.basename in_path)
              ~extra ~m trace
          in
          let oc = open_out path in
          output_string oc doc;
          close_out oc);
      if damaged then exit 2
    in
    let jsonl_out =
      let doc = "Write the JSONL decode to $(docv) instead of stdout." in
      Arg.(value & opt (some string) None & info [ "jsonl" ] ~docv:"FILE" ~doc)
    in
    let chrome_out =
      let doc =
        "Also render the journal as a Chrome trace_event document at $(docv) \
         (executor events become spans/marks; other records ride along as \
         extra events).  Suppresses the stdout JSONL unless --jsonl is also \
         given."
      in
      Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE" ~doc)
    in
    let doc =
      "Decode a binary journal to JSONL (one record per line) or a Chrome \
       trace; recovers every record before any damage and exits 2 if damage \
       was found."
    in
    Cmd.v (Cmd.info "decode" ~doc)
      Term.(const run $ in_arg $ jsonl_out $ chrome_out $ log_level)
  in
  let query_cmd =
    let run in_path pid_f kind_f name_f from_f to_f why procs fail_empty
        log_level =
      apply_log_level log_level;
      let items, damaged = load in_path in
      if damaged then exit 2;
      match why with
      | Some job ->
          let trace = Obs.Journal.to_trace items in
          let m = Option.value procs ~default:(infer_m items) in
          let chain = Obs.Span.causal_chain ~m trace ~job in
          List.iter (fun s -> print_endline (Obs.Span.render s)) chain;
          if chain = [] && fail_empty then exit 1
      | None ->
          let keep (r : Obs.Sink.record) =
            (match pid_f with None -> true | Some p -> r.Obs.Sink.pid = p)
            && (match kind_f with
               | None -> true
               | Some k -> r.Obs.Sink.kind = k)
            && (match name_f with
               | None -> true
               | Some sub ->
                   let name = r.Obs.Sink.name in
                   let nl = String.length name and sl = String.length sub in
                   let rec at i =
                     i + sl <= nl
                     && (String.sub name i sl = sub || at (i + 1))
                   in
                   at 0)
            && (match from_f with None -> true | Some t -> r.Obs.Sink.ts >= t)
            && match to_f with None -> true | Some t -> r.Obs.Sink.ts <= t
          in
          let matched =
            List.filter keep (List.map Obs.Journal.record_of_item items)
          in
          List.iter (fun r -> print_endline (jsonl_of_record r)) matched;
          if matched = [] && fail_empty then exit 1
    in
    let pid_f =
      let doc = "Keep only records of process $(docv)." in
      Arg.(value & opt (some int) None & info [ "pid" ] ~docv:"PID" ~doc)
    in
    let kind_f =
      let doc = "Keep only $(docv) records (span, instant, counter, log)." in
      Arg.(
        value
        & opt
            (some
               (enum
                  [
                    ("span", Obs.Sink.Span);
                    ("instant", Obs.Sink.Instant);
                    ("counter", Obs.Sink.Counter);
                    ("log", Obs.Sink.Log);
                  ]))
            None
        & info [ "kind" ] ~docv:"KIND" ~doc)
    in
    let name_f =
      let doc = "Keep only records whose name contains $(docv)." in
      Arg.(value & opt (some string) None & info [ "name" ] ~docv:"SUBSTR" ~doc)
    in
    let from_f =
      let doc = "Keep only records with ts >= $(docv)." in
      Arg.(value & opt (some int) None & info [ "from" ] ~docv:"TS" ~doc)
    in
    let to_f =
      let doc = "Keep only records with ts <= $(docv)." in
      Arg.(value & opt (some int) None & info [ "to" ] ~docv:"TS" ~doc)
    in
    let why =
      let doc =
        "Instead of filtering, print the minimal causal chain explaining job \
         $(docv)'s fate (Obs.Span.causal_chain over the journal's executor \
         events) — the offline twin of [amo_run report --why]."
      in
      Arg.(value & opt (some int) None & info [ "why" ] ~docv:"JOB" ~doc)
    in
    let procs_opt =
      let doc =
        "Process count for --why's causal reconstruction (default: the \
         largest pid seen in the journal)."
      in
      Arg.(value & opt (some int) None & info [ "procs" ] ~docv:"M" ~doc)
    in
    let fail_empty =
      let doc = "Exit 1 when nothing matches (for CI gating)." in
      Arg.(value & flag & info [ "fail-empty" ] ~doc)
    in
    let doc =
      "Filter a journal by pid/kind/name/time-window (JSONL output), or \
       explain one job's fate with --why; exits 1 with --fail-empty on no \
       match, 2 on a damaged journal."
    in
    Cmd.v (Cmd.info "query" ~doc)
      Term.(
        const run $ in_arg $ pid_f $ kind_f $ name_f $ from_f $ to_f $ why
        $ procs_opt $ fail_empty $ log_level)
  in
  let merge_cmd =
    let run in_paths out log_level =
      apply_log_level log_level;
      let loaded = List.map load in_paths in
      if List.exists snd loaded then exit 2;
      let merged = Obs.Journal.merge (Array.of_list (List.map fst loaded)) in
      match out with
      | Some path ->
          (* a merged stream is itself a valid journal segment *)
          let tmp = path ^ ".tmp" in
          let oc = open_out_bin tmp in
          output_string oc Obs.Journal.header;
          List.iter
            (fun (_src, it) -> output_string oc (Obs.Journal.encode it))
            merged;
          close_out oc;
          Sys.rename tmp path;
          Fmt.pr "merged          : %d records from %d journals -> %s@."
            (List.length merged) (List.length in_paths) path
      | None ->
          List.iter
            (fun (src, it) ->
              let r = Obs.Journal.record_of_item it in
              let j =
                match Obs.Sink.record_to_json r with
                | J.Obj fields -> J.Obj (("src", J.Int src) :: fields)
                | j -> j
              in
              print_endline (J.to_string ~minify:true j))
            merged
    in
    let in_args =
      let doc =
        "A journal to merge (repeatable: one per multicore domain or \
         Msg.Net node)."
      in
      Arg.(non_empty & opt_all string [] & info [ "in" ] ~docv:"PATH" ~doc)
    in
    let out =
      let doc =
        "Write the merged stream as a binary journal to $(docv) (atomic \
         tmp+rename) instead of JSONL on stdout."
      in
      Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
    in
    let doc =
      "Merge k per-domain/per-node journals into one causally consistent \
       stream: vector-clocked records (Msg.Net) are ordered by \
       happens-before, everything else tie-breaks deterministically on \
       (ts, pid, source) — repeated merges of the same journals are \
       byte-identical."
    in
    Cmd.v (Cmd.info "merge" ~doc) Term.(const run $ in_args $ out $ log_level)
  in
  let doc =
    "Offline engine over binary flight journals: decode to JSONL/Chrome, \
     query by pid/kind/name/time or causal --why, merge per-domain/per-node \
     journals deterministically."
  in
  Cmd.group (Cmd.info "trace" ~doc) [ decode_cmd; query_cmd; merge_cmd ]

let version_cmd =
  let run json =
    (* archived artifacts (BENCH_*.json baselines, Prometheus
       snapshots) are attributable to a binary + snapshot schema pair *)
    if json then
      print_endline
        (J.to_string ~minify:false
           (J.Obj
              [
                ("version", J.String version_string);
                ("snapshot_schema_version", J.Int Obs.Snapshot.schema_version);
              ]))
    else begin
      Fmt.pr "amo_run %s@." version_string;
      Fmt.pr "snapshot schema : v%d (BENCH_*.json / bench/compare.exe)@."
        Obs.Snapshot.schema_version
    end
  in
  let doc =
    "Print the binary version and the Obs.Snapshot schema version, so \
     archived BENCH_*.json and Prometheus artifacts are attributable."
  in
  Cmd.v (Cmd.info "version" ~doc) Term.(const run $ json_flag)

let () =
  let doc = "at-most-once and Write-All algorithms (Kentros & Kiayias)" in
  let info = Cmd.info "amo_run" ~version:version_string ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            kk_cmd;
            claim_cmd;
            worst_cmd;
            iterative_cmd;
            wa_cmd;
            trivial_cmd;
            pairing_cmd;
            msg_cmd;
            explore_cmd;
            chaos_cmd;
            fuzz_cmd;
            multicore_cmd;
            report_cmd;
            profile_cmd;
            trace_cmd;
            version_cmd;
          ]))
