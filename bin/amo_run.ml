(* amo_run: command-line driver for every algorithm in the library.

   Examples:
     amo_run kk --jobs 1000 --procs 8
     amo_run kk --jobs 1000 --procs 8 --beta 192 --sched random --seed 7 --crashes 3
     amo_run worst --jobs 1000 --procs 8
     amo_run iterative --jobs 65536 --procs 8 --eps-inv 2
     amo_run wa --jobs 65536 --procs 8 --eps-inv 2
     amo_run trivial --jobs 1000 --procs 8 --crashes 2
     amo_run pairing --jobs 1000 --procs 8 --crashes 2
     amo_run multicore --jobs 20000 --procs 4 *)

open Cmdliner

let pp_summary ~label ~n ~m ~f:_ (s : Core.Harness.summary) =
  (* report the crashes that actually happened, not the requested budget *)
  let f = List.length s.crashed in
  let upper = Core.Params.effectiveness_upper_bound ~n ~f in
  (match Core.Spec.check_at_most_once s.dos with
  | Ok () -> Fmt.pr "at-most-once    : OK@."
  | Error v ->
      Fmt.pr "at-most-once    : VIOLATED (%a)@." Fmt.string
        (Format.asprintf "%a" Core.Spec.pp_violation v));
  Fmt.pr "algorithm       : %s@." label;
  Fmt.pr "jobs performed  : %d / %d (upper bound with f=%d crashes: %d)@."
    s.do_count n f upper;
  Fmt.pr "wait-free       : %b@." s.wait_free;
  Fmt.pr "steps           : %d@." s.steps;
  Fmt.pr "crashed procs   : [%s]@."
    (String.concat "; " (List.map string_of_int s.crashed));
  Fmt.pr "work (weighted) : %d@." (Shm.Metrics.total_work s.metrics);
  Fmt.pr "shared reads    : %d@." (Shm.Metrics.total_reads s.metrics);
  Fmt.pr "shared writes   : %d@." (Shm.Metrics.total_writes s.metrics);
  Fmt.pr "collisions      : %d@." (Core.Collision.total s.collision);
  ignore m

let exports ~m ~csv_dos ~csv_timeline ~show_timeline ~show_gantt
    (s : Core.Harness.summary) =
  let timeline () = Analysis.Timeline.of_trace ~m s.trace in
  (match csv_dos with
  | Some path ->
      let oc = open_out path in
      output_string oc (Analysis.Csv.of_do_events s.dos);
      close_out oc;
      Fmt.pr "do-log CSV      : %s@." path
  | None -> ());
  (match csv_timeline with
  | Some path ->
      let oc = open_out path in
      output_string oc (Analysis.Csv.of_timeline (timeline ()));
      close_out oc;
      Fmt.pr "timeline CSV    : %s@." path
  | None -> ());
  if show_timeline then
    Fmt.pr "timeline:@.%a" Analysis.Timeline.pp (timeline ());
  if show_gantt then
    Fmt.pr "gantt (D=do, X=crash, T=terminate):@.%s"
      (Analysis.Gantt.render ~m s.trace)

(* ---- common options ---- *)

let jobs =
  let doc = "Number of jobs n." in
  Arg.(value & opt int 1000 & info [ "jobs"; "n" ] ~docv:"N" ~doc)

let procs =
  let doc = "Number of processes m." in
  Arg.(value & opt int 8 & info [ "procs"; "m" ] ~docv:"M" ~doc)

let beta =
  let doc = "Termination parameter beta (default: m, effectiveness-optimal)." in
  Arg.(value & opt (some int) None & info [ "beta" ] ~docv:"BETA" ~doc)

let seed =
  let doc = "PRNG seed for stochastic schedulers and crash times." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let sched =
  let doc = "Scheduler: rr, random, or bursty." in
  Arg.(
    value
    & opt (enum [ ("rr", `Rr); ("random", `Random); ("bursty", `Bursty) ]) `Rr
    & info [ "sched" ] ~docv:"SCHED" ~doc)

let crashes =
  let doc = "Number of random crash failures to inject (f < m)." in
  Arg.(value & opt int 0 & info [ "crashes"; "f" ] ~docv:"F" ~doc)

let eps_inv =
  let doc = "1/epsilon for the iterated algorithms (a positive integer)." in
  Arg.(value & opt int 2 & info [ "eps-inv" ] ~docv:"K" ~doc)

let csv_dos =
  let doc = "Export the linearized (pid, job) perform log as CSV to $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv-dos" ] ~docv:"FILE" ~doc)

let csv_timeline =
  let doc = "Export the per-process timeline as CSV to $(docv)." in
  Arg.(
    value & opt (some string) None & info [ "csv-timeline" ] ~docv:"FILE" ~doc)

let show_timeline =
  let doc = "Print the per-process timeline after the run." in
  Arg.(value & flag & info [ "timeline" ] ~doc)

let show_gantt =
  let doc = "Print an ASCII Gantt chart of the run." in
  Arg.(value & flag & info [ "gantt" ] ~doc)

let make_sched kind rng =
  match kind with
  | `Rr -> Shm.Schedule.round_robin ()
  | `Random -> Shm.Schedule.random rng
  | `Bursty -> Shm.Schedule.bursty rng ~max_burst:64

let make_adversary rng ~f ~m ~n =
  if f = 0 then Shm.Adversary.none
  else Shm.Adversary.random rng ~f ~m ~horizon:(4 * n)

(* ---- subcommands ---- *)

let kk_cmd =
  let run n m beta_opt seed sched_kind f csv_dos csv_timeline show_timeline
      show_gantt =
    let beta = Option.value beta_opt ~default:m in
    let rng = Util.Prng.of_int seed in
    let s =
      Core.Harness.kk
        ~scheduler:(make_sched sched_kind rng)
        ~adversary:(make_adversary rng ~f ~m ~n)
        ~n ~m ~beta ()
    in
    pp_summary ~label:(Printf.sprintf "KK(beta=%d)" beta) ~n ~m ~f s;
    Fmt.pr "guaranteed eff. : %d  (Theorem 4.4: n - (beta + m - 2))@."
      (Core.Params.predicted_effectiveness (Core.Params.make ~n ~m ~beta));
    exports ~m ~csv_dos ~csv_timeline ~show_timeline ~show_gantt s
  in
  let doc = "Run algorithm KKbeta (the paper's core contribution)." in
  Cmd.v (Cmd.info "kk" ~doc)
    Term.(
      const run $ jobs $ procs $ beta $ seed $ sched $ crashes $ csv_dos
      $ csv_timeline $ show_timeline $ show_gantt)

let claim_cmd =
  let run n m seed sched_kind f =
    let rng = Util.Prng.of_int seed in
    let metrics = Shm.Metrics.create ~m in
    let handles = Core.Claim_scan.processes ~metrics ~n ~m () in
    let outcome =
      Shm.Executor.run ~trace_level:`Outcomes
        ~scheduler:(make_sched sched_kind rng)
        ~adversary:(make_adversary rng ~f ~m ~n)
        handles
    in
    let dos = Shm.Trace.do_events outcome.Shm.Executor.trace in
    (match Core.Spec.check_at_most_once dos with
    | Ok () -> Fmt.pr "at-most-once    : OK@."
    | Error v ->
        Fmt.pr "at-most-once    : VIOLATED (%s)@."
          (Format.asprintf "%a" Core.Spec.pp_violation v));
    let f_actual =
      List.length (Shm.Trace.crashes outcome.Shm.Executor.trace)
    in
    Fmt.pr "algorithm       : claim-scan (test-and-set; outside the r/w model)@.";
    Fmt.pr "jobs performed  : %d / %d (optimal n-f: %d)@."
      (Core.Spec.do_count dos) n
      (Core.Claim_scan.predicted_effectiveness ~n ~f:f_actual);
    Fmt.pr "total actions   : %d@." (Shm.Metrics.total_actions metrics)
  in
  let doc =
    "Run the test-and-set claim scanner (the paper's RMW upper-bound witness)."
  in
  Cmd.v (Cmd.info "claim" ~doc)
    Term.(const run $ jobs $ procs $ seed $ sched $ crashes)

let worst_cmd =
  let run n m beta_opt =
    let beta = Option.value beta_opt ~default:m in
    let s = Core.Harness.kk_worst_case ~n ~m ~beta () in
    pp_summary ~label:(Printf.sprintf "KK(beta=%d) vs worst-case adversary" beta)
      ~n ~m ~f:(m - 1) s;
    let predicted =
      Core.Params.predicted_effectiveness (Core.Params.make ~n ~m ~beta)
    in
    Fmt.pr "prediction      : exactly %d jobs (tight by Theorem 4.4): %s@."
      predicted
      (if s.do_count = predicted then "MATCHED" else "MISMATCH")
  in
  let doc =
    "Run KKbeta against the constructive worst-case adversary of Theorem 4.4."
  in
  Cmd.v (Cmd.info "worst" ~doc) Term.(const run $ jobs $ procs $ beta)

let iterative_cmd =
  let run n m eps_inv seed sched_kind f =
    let rng = Util.Prng.of_int seed in
    let s =
      Core.Harness.iterative
        ~scheduler:(make_sched sched_kind rng)
        ~adversary:(make_adversary rng ~f ~m ~n)
        ~n ~m ~epsilon_inv:eps_inv ()
    in
    pp_summary
      ~label:(Printf.sprintf "IterativeKK(eps=1/%d)" eps_inv)
      ~n ~m ~f s;
    Fmt.pr "loss bound      : <= %d jobs (Theorem 6.4)@."
      (Core.Iterative.predicted_loss_bound ~n ~m ~epsilon_inv:eps_inv)
  in
  let doc = "Run IterativeKK(eps): work-optimal at-most-once." in
  Cmd.v (Cmd.info "iterative" ~doc)
    Term.(const run $ jobs $ procs $ eps_inv $ seed $ sched $ crashes)

let wa_cmd =
  let run n m eps_inv seed sched_kind f =
    let rng = Util.Prng.of_int seed in
    let s, complete =
      Core.Harness.writeall_iterative
        ~scheduler:(make_sched sched_kind rng)
        ~adversary:(make_adversary rng ~f ~m ~n)
        ~n ~m ~epsilon_inv:eps_inv ()
    in
    Fmt.pr "algorithm       : WA_IterativeKK(eps=1/%d)@." eps_inv;
    Fmt.pr "write-all done  : %b@." complete;
    Fmt.pr "steps           : %d@." s.steps;
    Fmt.pr "work (weighted) : %d@." (Shm.Metrics.total_work s.metrics);
    Fmt.pr "shared writes   : %d@." (Shm.Metrics.total_writes s.metrics)
  in
  let doc = "Run WA_IterativeKK(eps): work-optimal Write-All." in
  Cmd.v (Cmd.info "wa" ~doc)
    Term.(const run $ jobs $ procs $ eps_inv $ seed $ sched $ crashes)

let trivial_cmd =
  let run n m seed sched_kind f =
    let rng = Util.Prng.of_int seed in
    let s =
      Core.Harness.trivial
        ~scheduler:(make_sched sched_kind rng)
        ~adversary:(make_adversary rng ~f ~m ~n)
        ~n ~m ()
    in
    pp_summary ~label:"trivial split" ~n ~m ~f s;
    Fmt.pr "guaranteed eff. : %d  ((m-f) * n/m)@."
      (Core.Params.trivial_effectiveness ~n ~m ~f)
  in
  let doc = "Run the trivial split baseline." in
  Cmd.v (Cmd.info "trivial" ~doc)
    Term.(const run $ jobs $ procs $ seed $ sched $ crashes)

let pairing_cmd =
  let run n m seed sched_kind f =
    let rng = Util.Prng.of_int seed in
    let s =
      Core.Harness.pairing
        ~scheduler:(make_sched sched_kind rng)
        ~adversary:(make_adversary rng ~f ~m ~n)
        ~n ~m ()
    in
    pp_summary ~label:"two-process pairing" ~n ~m ~f s
  in
  let doc = "Run the two-process pairing baseline." in
  Cmd.v (Cmd.info "pairing" ~doc)
    Term.(const run $ jobs $ procs $ seed $ sched $ crashes)

let msg_cmd =
  let run n m servers seed f =
    let rng = Util.Prng.of_int seed in
    let crash_plan =
      List.init (min f (m - 1)) (fun i ->
          ((i + 1) * 50 * n / m, `Client (i + 1)))
    in
    let o = Msg.Kk_mp.run_kk ~crash_plan ~servers ~n ~m ~beta:m ~rng () in
    (match Core.Spec.check_at_most_once o.Msg.Kk_mp.dos with
    | Ok () -> Fmt.pr "at-most-once    : OK (message passing, ABD registers)@."
    | Error v ->
        Fmt.pr "at-most-once    : VIOLATED (%s)@."
          (Format.asprintf "%a" Core.Spec.pp_violation v));
    Fmt.pr "jobs performed  : %d / %d (guarantee >= %d)@."
      (Core.Spec.do_count o.Msg.Kk_mp.dos)
      n
      (n - (m + m - 2));
    Fmt.pr "clients crashed : [%s]@."
      (String.concat "; " (List.map string_of_int o.Msg.Kk_mp.crashed_clients));
    Fmt.pr "stuck clients   : [%s]@."
      (String.concat "; " (List.map string_of_int o.Msg.Kk_mp.stuck));
    Fmt.pr "deliveries      : %d (%.1f per job)@." o.Msg.Kk_mp.deliveries
      (float_of_int o.Msg.Kk_mp.deliveries /. float_of_int n)
  in
  let servers =
    let doc = "Number of ABD replica servers." in
    Cmdliner.Arg.(value & opt int 3 & info [ "servers" ] ~docv:"S" ~doc)
  in
  let doc =
    "Run KKbeta over message passing (ABD-emulated atomic registers)."
  in
  Cmd.v (Cmd.info "msg" ~doc)
    Term.(const run $ jobs $ procs $ servers $ seed $ crashes)

let multicore_cmd =
  let run n m beta_opt =
    let beta = Option.value beta_opt ~default:m in
    let r = Multicore.Runner.run_kk ~n ~m ~beta () in
    (match Core.Spec.check_at_most_once r.dos with
    | Ok () -> Fmt.pr "at-most-once    : OK (real domains)@."
    | Error v ->
        Fmt.pr "at-most-once    : VIOLATED (%s)@."
          (Format.asprintf "%a" Core.Spec.pp_violation v));
    Fmt.pr "jobs performed  : %d / %d@." (Core.Spec.do_count r.dos) n;
    Fmt.pr "wall time       : %.3fs@." r.wall_seconds;
    for p = 1 to m do
      Fmt.pr "  p%-2d performed : %d@." p r.per_process.(p)
    done
  in
  let doc = "Run KKbeta on real OCaml 5 domains with atomic registers." in
  Cmd.v (Cmd.info "multicore" ~doc) Term.(const run $ jobs $ procs $ beta)

let () =
  let doc = "at-most-once and Write-All algorithms (Kentros & Kiayias)" in
  let info = Cmd.info "amo_run" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            kk_cmd;
            claim_cmd;
            worst_cmd;
            iterative_cmd;
            wa_cmd;
            trivial_cmd;
            pairing_cmd;
            msg_cmd;
            multicore_cmd;
          ]))
